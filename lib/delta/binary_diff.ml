type op =
  | Copy of { src_off : int; len : int }
  | Add of string

type t = { script : op list }

let block_size = 64

(* Polynomial rolling hash over a [block_size] window. *)
let base = 1000003
let pow_top =
  (* base^(block_size-1) in the native-int ring *)
  let p = ref 1 in
  for _ = 1 to block_size - 1 do
    p := !p * base
  done;
  !p

let hash_block s off =
  let h = ref 0 in
  for i = off to off + block_size - 1 do
    (* lint: unsafe-ok callers only pass off <= length s - block_size,
       so i <= off + block_size - 1 < length s *)
    h := (!h * base) + Char.code (String.unsafe_get s i)
  done;
  !h

let roll h ~out ~in_ = ((h - (Char.code out * pow_top)) * base) + Char.code in_

let diff source target =
  let ns = String.length source and nt = String.length target in
  if nt = 0 then { script = [] }
  else if ns < block_size then { script = [ Add target ] }
  else begin
    (* Index every aligned source block. *)
    let index = Hashtbl.create (max 16 (ns / block_size)) in
    let off = ref (ns - block_size) in
    (* Insert right-to-left so earlier offsets win lookups. *)
    while !off >= 0 do
      Hashtbl.replace index (hash_block source !off) !off;
      off := !off - block_size
    done;
    let script = ref [] in
    let lit_start = ref 0 in
    let flush_until pos =
      if pos > !lit_start then
        script := Add (String.sub target !lit_start (pos - !lit_start)) :: !script
    in
    let verify s_off t_off =
      let rec go k =
        k >= block_size
        || (source.[s_off + k] = target.[t_off + k] && go (k + 1))
      in
      go 0
    in
    let i = ref 0 in
    let h = ref (if nt >= block_size then hash_block target 0 else 0) in
    while !i + block_size <= nt do
      let matched =
        match Hashtbl.find_opt index !h with
        | Some s_off when verify s_off !i ->
            (* Extend forward. *)
            let fwd = ref block_size in
            while
              s_off + !fwd < ns
              && !i + !fwd < nt
              && source.[s_off + !fwd] = target.[!i + !fwd]
            do
              incr fwd
            done;
            (* Extend backward into the pending literal. *)
            let back = ref 0 in
            while
              s_off - !back > 0
              && !i - !back > !lit_start
              && source.[s_off - !back - 1] = target.[!i - !back - 1]
            do
              incr back
            done;
            flush_until (!i - !back);
            script :=
              Copy { src_off = s_off - !back; len = !fwd + !back } :: !script;
            i := !i + !fwd;
            lit_start := !i;
            if !i + block_size <= nt then h := hash_block target !i;
            true
        | _ -> false
      in
      if not matched then begin
        if !i + block_size < nt then
          h := roll !h ~out:target.[!i] ~in_:target.[!i + block_size];
        incr i
      end
    done;
    flush_until nt;
    { script = List.rev !script }
  end

let apply source { script } =
  let buf = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | Add s -> Buffer.add_string buf s
      | Copy { src_off; len } ->
          if src_off < 0 || len < 0 || src_off + len > String.length source
          then invalid_arg "Binary_diff.apply: copy out of source bounds";
          Buffer.add_substring buf source src_off len)
    script;
  Buffer.contents buf

let ops { script } = script

let encode { script } =
  let buf = Buffer.create 256 in
  List.iter
    (fun op ->
      match op with
      | Copy { src_off; len } ->
          Buffer.add_char buf 'C';
          Varint.add buf src_off;
          Varint.add buf len
      | Add s ->
          Buffer.add_char buf 'A';
          Varint.add buf (String.length s);
          Buffer.add_string buf s)
    script;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let script = ref [] in
  while !pos < n do
    let tag = s.[!pos] in
    incr pos;
    match tag with
    | 'C' ->
        let src_off, p = Varint.read s !pos in
        let len, p = Varint.read s p in
        pos := p;
        script := Copy { src_off; len } :: !script
    | 'A' ->
        let len, p = Varint.read s !pos in
        pos := p;
        if !pos + len > n then invalid_arg "Binary_diff.decode: truncated add";
        script := Add (String.sub s !pos len) :: !script;
        pos := !pos + len
    | _ -> invalid_arg "Binary_diff.decode: unknown op"
  done;
  { script = List.rev !script }

let size t = String.length (encode t)

let copy_ratio { script } =
  let copied, total =
    List.fold_left
      (fun (c, t) op ->
        match op with
        | Copy { len; _ } -> (c + len, t + len)
        | Add s -> (c, t + String.length s))
      (0, 0) script
  in
  if total = 0 then 1.0 else float_of_int copied /. float_of_int total
