(** Zipfian distributions over ranks [1..n].

    The paper's workload-aware experiment (Figure 16) assigns access
    frequencies to versions using a Zipf distribution with exponent 2;
    this module provides both the normalized probability mass and a
    sampler. *)

type t

val create : n:int -> exponent:float -> t
(** [create ~n ~exponent] prepares a Zipf law with pmf proportional to
    [1 / rank^exponent] over ranks [1..n].
    @raise Invalid_argument if [n <= 0]. *)

val n : t -> int

val prob : t -> int -> float
(** [prob t rank] is the probability of [rank] (1-based).
    @raise Invalid_argument if [rank] is out of [\[1, n\]]. *)

val masses : t -> float array
(** All [n] probabilities, index 0 holding rank 1. Sums to 1 (up to
    float rounding). *)

val sample : t -> Prng.t -> int
(** Draw a rank in [\[1, n\]] by inverse-CDF binary search, O(log n). *)

val frequencies : t -> Prng.t -> draws:int -> int array
(** [frequencies t rng ~draws] simulates [draws] accesses and returns
    the per-rank hit counts (index 0 = rank 1). *)
