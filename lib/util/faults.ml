type action =
  | Fail of string
  | Crash
  | Torn of float
  | Corrupt of int
  | Drop

exception Injected of string

let log_src = Logs.Src.create "dsvc.faults" ~doc:"Fault injection"

module Log = (val Logs.src_log log_src : Logs.LOG)

type armed_fault = { mutable remaining : int; action : action }

(* Shared between the server thread and test code: every access goes
   through the mutex. *)
let mutex = Mutex.create ()

(* lint: mutable-ok process-global fault registry, only armed by test
   code; every access goes through [with_lock] below *)
let table : (string, armed_fault) Hashtbl.t = Hashtbl.create 8

(* lint: mutable-ok same registry, same [with_lock] discipline *)
let counters : (string, int) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let arm ~site ?(after = 0) action =
  with_lock (fun () ->
      Hashtbl.replace table site { remaining = max 0 after; action })

let disarm ~site = with_lock (fun () -> Hashtbl.remove table site)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset table;
      Hashtbl.reset counters)

let armed ~site = with_lock (fun () -> Hashtbl.mem table site)

let hits ~site =
  with_lock (fun () ->
      Option.value (Hashtbl.find_opt counters site) ~default:0)

let check site =
  let fired =
    with_lock (fun () ->
        Hashtbl.replace counters site
          (1 + Option.value (Hashtbl.find_opt counters site) ~default:0);
        match Hashtbl.find_opt table site with
        | None -> None
        | Some f ->
            if f.remaining > 0 then begin
              f.remaining <- f.remaining - 1;
              None
            end
            else begin
              Hashtbl.remove table site;
              Versioning_obs.Metrics.counter "dsvc_store_faults_injected_total"
                ~labels:[ ("site", site) ]
                ~help:"Armed faults that actually fired, by site";
              Some f.action
            end)
  in
  (* Logged outside the lock: the reporter may take its own locks
     (Logctx sink, Flight ring). The Logctx reporter stamps the line
     with the active request/trace id, so an injected fault can be
     attributed to the request it hit. *)
  (match fired with
  | Some _ -> Log.warn (fun m -> m "injecting armed fault at site %s" site)
  | None -> ());
  fired

let guard site = match check site with None -> () | Some _ -> raise (Injected site)
let crash site = raise (Injected site)

let on_write site content =
  let act = match check site with Some a -> Some a | None -> check "write" in
  match act with
  | None -> `Write (content, false)
  | Some (Fail msg) ->
      `Fail (String.sub content 0 (String.length content / 2), msg)
  | Some Crash | Some Drop -> raise (Injected site)
  | Some (Torn fraction) ->
      let fraction = Float.max 0.0 (Float.min 1.0 fraction) in
      let k = int_of_float (fraction *. float_of_int (String.length content)) in
      `Write (String.sub content 0 k, true)
  | Some (Corrupt i) ->
      let n = String.length content in
      if n = 0 then `Write (content, false)
      else begin
        let b = Bytes.of_string content in
        let i = ((i mod n) + n) mod n in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        `Write (Bytes.to_string b, false)
      end
