(** Readiness reactor for the event-driven server (DESIGN.md §13).

    A loop is a table of registered file descriptors with per-fd
    read/write interest and a callback, behind one of three poller
    backends selected at creation time:

    - ["epoll"] — Linux epoll(7): persistent kernel interest set,
      O(ready) waits; the fast path where available.
    - ["poll"] — poll(2) via a small C stub: the portable default; no
      FD_SETSIZE ceiling on descriptor numbers.
    - ["select"] — pure-stdlib [Unix.select]: reference backend, kept
      so backend-equivalence stays testable (fds must stay below
      FD_SETSIZE).

    [DSVC_EVLOOP] (auto | epoll | poll | select) chooses when the
    creator passes no explicit backend; "auto" prefers epoll, then
    poll.

    Threading contract: exactly one thread calls {!wait} (and
    {!add}/{!modify}/{!remove}, directly or from callbacks). Any
    thread may call {!post}; the job runs on the loop thread during
    its next {!wait}, woken immediately via a self-pipe. *)

type t

type event = [ `Read | `Write ]

val create : ?backend:string -> unit -> t
(** Create a loop. Raises [Failure] on an unknown backend name. *)

val has_epoll : unit -> bool
(** Whether this build can create epoll loops (Linux). Lets the
    backend-matrix tests skip the epoll leg elsewhere instead of
    failing on it. *)

val backend_name : t -> string
(** ["epoll"], ["poll"], or ["select"] — whatever creation resolved. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> (event -> unit) -> unit
(** Register [fd]. The callback fires on the loop thread whenever the
    fd is ready in a direction of current interest; error and hangup
    conditions are reported as [`Read] so the handler observes the
    failure from its normal read path. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change interest for a registered fd. Unknown fds are ignored. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister. Call before closing the fd. *)

val post : t -> (unit -> unit) -> unit
(** Thread-safe: enqueue a job for the loop thread and wake it. *)

val add_timer : t -> period:float -> (unit -> unit) -> int
(** Register a periodic timer (loop thread only, like {!add}). The
    callback fires on the loop thread during {!wait} whenever its
    deadline has passed, then re-arms [period] seconds from {e now} —
    at most one firing per wait, no backlog after a stall. {!wait}
    caps its poll timeout at the nearest timer deadline. Callbacks
    run under the same lint-R7 contract as fd callbacks: nothing
    Blocks-level may be reachable from them (hand blocking work to an
    executor). Raises [Invalid_argument] on a non-positive period.
    Returns an id for {!cancel_timer}. *)

val cancel_timer : t -> int -> unit
(** Deregister a timer (loop thread only). Unknown ids are ignored. *)

val wait : t -> timeout:float -> int
(** Run one iteration: posted jobs, then up to [timeout] seconds of
    readiness waiting (negative = forever), then callbacks for every
    ready fd. Returns the number of callbacks plus jobs run. *)

val close : t -> unit
(** Release the poller and self-pipe. Registered fds are untouched. *)

val writev : Unix.file_descr -> (string * int * int) array -> int
(** Vectored write of [(string, offset, length)] slices (at most 16
    are consumed per call). Returns bytes written, or [-1] when the
    socket cannot accept data right now (EAGAIN/EINTR — retry when
    writable). Raises [Unix.Unix_error] on hard failures (EPIPE,
    ECONNRESET, …). *)

val fd_int : Unix.file_descr -> int
(** The numeric value of a descriptor (Unix only); handy as a table
    key and for diagnostics. *)
