(** Indexed binary min-heap with decrease-key.

    Keys are floats; elements are integers in [\[0, capacity)] — a
    deliberate restriction matching graph-algorithm use (Dijkstra,
    Prim, Modified Prim), where elements are vertex ids. Each element
    may be present at most once; [insert]-ing a present element acts as
    a key update. All operations are O(log n) except [mem]/[key_of],
    which are O(1). *)

type t

val create : capacity:int -> t
(** [create ~capacity] makes an empty heap accepting elements
    [0 .. capacity-1]. *)

val length : t -> int
(** Number of elements currently stored. *)

val is_empty : t -> bool

val mem : t -> int -> bool
(** [mem h v] is [true] iff [v] is currently in the heap. *)

val key_of : t -> int -> float
(** [key_of h v] is [v]'s current key.
    @raise Not_found if [v] is absent. *)

val insert : t -> int -> float -> unit
(** [insert h v k] inserts [v] with key [k], or updates [v]'s key to
    [k] (either direction) if already present.
    @raise Invalid_argument if [v] is outside [\[0, capacity)]. *)

val decrease_key : t -> int -> float -> unit
(** [decrease_key h v k] lowers [v]'s key to [k]. No-op when [k] is
    not lower. @raise Not_found if [v] is absent. *)

val min_elt : t -> int * float
(** Smallest-key element, without removing it.
    @raise Not_found when empty. *)

val pop_min : t -> int * float
(** Remove and return the smallest-key element. Ties broken by smaller
    element id, for determinism. @raise Not_found when empty. *)

val remove : t -> int -> unit
(** [remove h v] deletes [v] if present; no-op otherwise. *)
