(* Splitmix64: fast, high-quality, splittable. Reference: Steele,
   Lea & Flood, "Fast splittable pseudorandom number generators",
   OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec go () =
    let raw = Int64.shift_right_logical (next_int64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.(sub (add (sub raw v) bound64) 1L) < 0L then go ()
    else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  float t 1.0 < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: k iterations, O(k) expected set operations. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - k to n - 1 do
    let candidate = int t (j + 1) in
    if IS.mem candidate !chosen then chosen := IS.add j !chosen
    else chosen := IS.add candidate !chosen
  done;
  IS.elements !chosen
