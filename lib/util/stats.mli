(** Small descriptive-statistics helpers used by the experiment
    harness (Figure 12's delta-size distribution, timing summaries). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;        (** 25th percentile *)
  median : float;
  q3 : float;        (** 75th percentile *)
  max : float;
}

val summarize : float array -> summary
(** Descriptive summary. @raise Invalid_argument on an empty array.
    Percentiles use linear interpolation between closest ranks. The
    input array is not modified. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation.
    @raise Invalid_argument on an empty array or out-of-range [p]. *)

val mean : float array -> float
val stddev : float array -> float

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering: count/mean/min/q1/median/q3/max. *)

val human_bytes : float -> string
(** [human_bytes 1536.0] is ["1.50KB"]; powers of 1024 up to TB. *)
