(** Build and process provenance: which commit this binary was run
    from, which compiler built it, and how long the process has been
    up. Stamped into [GET /health], the [dsvc metrics --json] meta
    block, and the bench record, so all three are diffable against
    each other. *)

val git_rev : unit -> string
(** The current commit, read straight from [.git] relative to the
    working directory (HEAD → ref file → packed-refs) — no subprocess,
    so it works where git(1) is absent. ["unknown"] outside a
    checkout. *)

val ocaml_version : string
(** [Sys.ocaml_version] of the compiler that built this binary. *)

val start_time : float
(** Process start, seconds since the epoch (captured when this module
    initialized). *)

val uptime : unit -> float
(** Seconds since {!start_time}, never negative. *)
