(** Fork-join parallelism over OCaml domains.

    Each parallel call splits its index range into contiguous chunks
    and runs them on a bounded pool of worker domains ([jobs] workers:
    the calling domain plus [jobs - 1] spawned ones), pulling chunks
    from a shared atomic counter for load balance. Results land in
    per-chunk slots, so output order is deterministic and identical to
    the sequential evaluation regardless of scheduling.

    [jobs = 1] (the default without a [DSVC_JOBS] override) bypasses
    domains entirely — the call is exactly [Array.init] on the calling
    domain — so existing single-threaded call sites and the
    fault-injection tests are unaffected. Calls with fewer than 32
    indices also run sequentially: below that, spawn/join overhead
    dominates any win, and callers in tight loops (brute-force
    enumerations, property tests) must not pay a domain spawn per
    call.

    The user function must be safe to run on any domain for indices in
    its chunk (no unsynchronized shared mutation); per-domain scratch
    state belongs in [Domain.DLS]. If any invocation raises, the pool
    stops handing out further chunks, joins its workers, and re-raises
    one of the captured exceptions with its original backtrace. *)

val default_jobs : unit -> int
(** The [DSVC_JOBS] environment variable clamped to [1, 128], or [1]
    when unset/unparseable. Read once at first use. This is the
    default for every [?jobs] knob in the library, so a test run under
    [DSVC_JOBS=2] exercises every parallel path. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available, for benchmarks that want "all cores". *)

val parallel_init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init ~jobs n f] is observably [Array.init n f]: element
    [i] is [f i], evaluated at most once, with chunks of the index
    range distributed over [min jobs n] domains.
    @raise Invalid_argument on [n < 0]. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f a] is observably [Array.map f a]. *)
