(* Standard array-embedded binary heap plus a position index so that
   decrease-key can locate elements in O(1). [pos.(v) = -1] encodes
   absence. Comparison is on (key, element id) so that pop order is
   deterministic under key ties. *)

type t = {
  mutable size : int;
  elts : int array;        (* heap slots -> element ids *)
  keys : float array;      (* heap slots -> keys, parallel to elts *)
  pos : int array;         (* element ids -> heap slot, or -1 *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Binary_heap.create";
  {
    size = 0;
    elts = Array.make (max capacity 1) 0;
    keys = Array.make (max capacity 1) 0.0;
    pos = Array.make (max capacity 1) (-1);
  }

let length h = h.size
let is_empty h = h.size = 0

let mem h v = v >= 0 && v < Array.length h.pos && h.pos.(v) >= 0

let key_of h v =
  if not (mem h v) then raise Not_found;
  h.keys.(h.pos.(v))

let less h i j =
  h.keys.(i) < h.keys.(j)
  || (h.keys.(i) = h.keys.(j) && h.elts.(i) < h.elts.(j))

let swap h i j =
  let ei = h.elts.(i) and ej = h.elts.(j) in
  let ki = h.keys.(i) and kj = h.keys.(j) in
  h.elts.(i) <- ej;
  h.elts.(j) <- ei;
  h.keys.(i) <- kj;
  h.keys.(j) <- ki;
  h.pos.(ej) <- i;
  h.pos.(ei) <- j

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && less h l !smallest then smallest := l;
  if r < h.size && less h r !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let insert h v k =
  if v < 0 || v >= Array.length h.pos then
    invalid_arg "Binary_heap.insert: element out of range";
  if h.pos.(v) >= 0 then begin
    let i = h.pos.(v) in
    let old = h.keys.(i) in
    h.keys.(i) <- k;
    if k < old then sift_up h i else sift_down h i
  end
  else begin
    let i = h.size in
    h.size <- h.size + 1;
    h.elts.(i) <- v;
    h.keys.(i) <- k;
    h.pos.(v) <- i;
    sift_up h i
  end

let decrease_key h v k =
  if not (mem h v) then raise Not_found;
  let i = h.pos.(v) in
  if k < h.keys.(i) then begin
    h.keys.(i) <- k;
    sift_up h i
  end

let min_elt h =
  if h.size = 0 then raise Not_found;
  (h.elts.(0), h.keys.(0))

let delete_at h i =
  let last = h.size - 1 in
  let v = h.elts.(i) in
  h.pos.(v) <- -1;
  if i <> last then begin
    h.elts.(i) <- h.elts.(last);
    h.keys.(i) <- h.keys.(last);
    h.pos.(h.elts.(i)) <- i;
    h.size <- last;
    sift_down h i;
    sift_up h i
  end
  else h.size <- last

let pop_min h =
  let v, k = min_elt h in
  delete_at h 0;
  (v, k)

let remove h v = if mem h v then delete_at h h.pos.(v)
