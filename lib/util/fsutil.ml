let ( let* ) = Result.bind

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir;
  if Sys.file_exists dir && Sys.is_directory dir then Ok ()
  else Error (Printf.sprintf "cannot create directory %s" dir)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

let write_file path content =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Ok ()
  with Sys_error e -> Error e

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let unix_msg fn err = Printf.sprintf "%s: %s" fn (Unix.error_message err)

(* Write [data] to a fresh temp file in [dir]; the temp file never
   survives a failure. *)
let write_tmp ~fsync dir data =
  let* tmp =
    try Ok (Filename.temp_file ~temp_dir:dir ".write" ".tmp")
    with Sys_error e -> Error e
  in
  let result =
    try
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_all fd data;
          if fsync then Unix.fsync fd);
      Ok tmp
    with
    | Sys_error e -> Error e
    | Unix.Unix_error (err, fn, _) -> Error (unix_msg fn err)
  in
  (match result with
  | Error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
  | Ok _ -> ());
  result

let write_file_atomic ?(fsync = true) ?backup ~site path content =
  let dir = Filename.dirname path in
  let* () = mkdir_p dir in
  match Faults.on_write site content with
  | `Fail (partial, msg) ->
      (* Simulated mid-write failure: the partial temp file must be
         cleaned up, exactly as a real ENOSPC path would. *)
      (match write_tmp ~fsync:false dir partial with
      | Ok tmp -> ( try Sys.remove tmp with Sys_error _ -> ())
      | Error _ -> ());
      Error msg
  | `Write (data, crash_after) -> (
      (* A torn write models a crash before fsync: skip the syncs so
         the partial content becomes visible. *)
      let fsync = fsync && not crash_after in
      let* tmp = write_tmp ~fsync dir data in
      try
        (match backup with
        | Some bak when Sys.file_exists path ->
            (try if Sys.file_exists bak then Sys.remove bak
             with Sys_error _ -> ());
            (try Unix.link path bak
             with Unix.Unix_error _ | Sys_error _ -> ())
        | _ -> ());
        Sys.rename tmp path;
        if fsync then fsync_dir dir;
        if crash_after then Faults.crash site;
        Ok ()
      with Sys_error e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        Error e)
