type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  q1 : float;
  median : float;
  q3 : float;
  max : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev: empty";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  percentile_sorted sorted p

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    q1 = percentile_sorted sorted 25.0;
    median = percentile_sorted sorted 50.0;
    q3 = percentile_sorted sorted 75.0;
    max = sorted.(Array.length sorted - 1);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.q1 s.median s.q3 s.max

let human_bytes b =
  let units = [| "B"; "KB"; "MB"; "GB"; "TB" |] in
  let rec go b i =
    if b >= 1024.0 && i < Array.length units - 1 then go (b /. 1024.0) (i + 1)
    else Printf.sprintf "%.2f%s" b units.(i)
  in
  go b 0
