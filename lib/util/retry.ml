type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
}

let default =
  {
    max_attempts = 4;
    base_delay = 0.05;
    max_delay = 2.0;
    multiplier = 2.0;
    jitter = 0.5;
  }

let delay p ~attempt ~rand =
  let raw = p.base_delay *. (p.multiplier ** float_of_int (max 0 attempt)) in
  let capped = Float.min p.max_delay raw in
  let jitter = Float.max 0.0 (Float.min 1.0 p.jitter) in
  Float.max 0.0 (capped *. (1.0 -. (jitter *. rand)))

let seeded_rand ~seed =
  let state = Prng.create ~seed in
  fun () -> Prng.float state 1.0

(* Jitter exists to decorrelate clients that fail in lockstep (a node
   death makes every client retry against the survivors at once), so
   by default each process draws from its own pid/clock-seeded stream.
   DSVC_RETRY_SEED pins the stream for reproducible schedules in
   tests and deterministic chaos harnesses. *)
let default_rand () =
  match Option.bind (Sys.getenv_opt "DSVC_RETRY_SEED") int_of_string_opt with
  | Some seed -> seeded_rand ~seed
  | None ->
      let seed =
        Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1_000_000.0)
      in
      seeded_rand ~seed

let log_src = Logs.Src.create "dsvc.retry" ~doc:"Retry backoff"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_on_retry ~attempt ~delay =
  Versioning_obs.Metrics.counter "dsvc_client_retries_total"
    ~help:"Backoff sleeps taken by Retry.with_policy";
  Log.warn (fun m ->
      m "retrying after attempt %d (sleeping %.3fs)" attempt delay)

let with_policy ?(policy = default) ?sleep ?rand ?on_retry ~retryable f =
  let sleep =
    match sleep with
    | Some s -> s
    | None -> fun d -> if d > 0.0 then Unix.sleepf d
  in
  let rand = match rand with Some r -> r | None -> default_rand () in
  let on_retry =
    match on_retry with Some cb -> cb | None -> default_on_retry
  in
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error e as err ->
        if attempt + 1 >= policy.max_attempts || not (retryable e) then err
        else begin
          let d = delay policy ~attempt ~rand:(rand ()) in
          on_retry ~attempt ~delay:d;
          sleep d;
          go (attempt + 1)
        end
  in
  go 0
