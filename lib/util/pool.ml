module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Context = Versioning_obs.Context

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let default_jobs =
  let cached = lazy (
    match Sys.getenv_opt "DSVC_JOBS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> clamp 1 128 n
        | None -> 1))
  in
  fun () -> Lazy.force cached

let recommended_jobs () = Domain.recommended_domain_count ()

(* Chunks are finer than one-per-worker so an unlucky expensive run
   of indices does not serialize the whole call behind one domain. *)
let chunks_per_worker = 8

(* Below this many indices the spawn/join cost dominates any win, and
   callers in tight loops (brute-force enumerations, property tests)
   would otherwise pay one domain spawn per call. *)
let min_parallel = 32

let parallel_init ?(jobs = default_jobs ()) n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if jobs <= 1 || n < min_parallel then begin
    Metrics.counter "dsvc_pool_sequential_calls_total"
      ~help:"parallel_init calls taking the sequential path";
    Array.init n f
  end
  else
    Trace.with_span "pool.parallel_init" @@ fun () ->
    let workers = clamp 1 n jobs in
    let chunk_size =
      max 1 ((n + (workers * chunks_per_worker) - 1) / (workers * chunks_per_worker))
    in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    if Obs.enabled () then begin
      Metrics.counter "dsvc_pool_parallel_calls_total"
        ~help:"parallel_init calls taking the parallel path";
      Metrics.counter "dsvc_pool_tasks_total" ~by:(float_of_int n)
        ~help:"Items processed by parallel pool calls";
      Metrics.counter "dsvc_pool_chunks_total" ~by:(float_of_int nchunks)
        ~help:"Chunks queued by parallel pool calls";
      Metrics.counter "dsvc_pool_domains_spawned_total"
        ~by:(float_of_int (workers - 1))
        ~help:"Worker domains spawned by the pool";
      Metrics.gauge "dsvc_pool_jobs" (float_of_int workers)
        ~help:"Worker count of the most recent parallel pool call"
    end;
    (* one slot per chunk: each is written by exactly one domain, and
       the joins order those writes before the final concatenation *)
    let slots = Array.make nchunks [||] in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    (* [busy] is None when observability is off: the loop then never
       touches a clock, keeping the off-mode path identical to the
       uninstrumented pool. *)
    let rec worker busy =
      if Atomic.get failure = None then begin
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk_size in
          let hi = min n (lo + chunk_size) in
          let t0 = match busy with Some _ -> Unix.gettimeofday () | None -> 0.0 in
          (match Array.init (hi - lo) (fun i -> f (lo + i)) with
          | chunk -> slots.(c) <- chunk
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          (match busy with
          | Some acc ->
              let dt = Unix.gettimeofday () -. t0 in
              acc := (fst !acc +. dt, snd !acc + 1)
          | None -> ());
          worker busy
        end
      end
    in
    (* Per-worker wrapper: time the whole drain so busy vs idle per
       domain is visible, and count the chunks this domain ran. *)
    let run_worker () =
      if not (Obs.enabled ()) then worker None
      else begin
        let labels =
          [ ("domain", string_of_int (Domain.self () :> int)) ]
        in
        let t0 = Unix.gettimeofday () in
        let busy = ref (0.0, 0) in
        worker (Some busy);
        let total = Unix.gettimeofday () -. t0 in
        let busy_s, nrun = !busy in
        Metrics.counter "dsvc_pool_chunks_run_total" ~labels
          ~by:(float_of_int nrun)
          ~help:"Chunks executed, by worker domain";
        Metrics.observe "dsvc_pool_worker_busy_seconds" ~labels busy_s
          ~help:"Per-call time a worker domain spent running chunks";
        Metrics.observe "dsvc_pool_worker_idle_seconds" ~labels
          (Float.max 0.0 (total -. busy_s))
          ~help:"Per-call time a worker domain spent waiting for work"
      end
    in
    (* Re-seed each spawned domain's span stack with the caller's
       current span, and its ambient trace context with the caller's,
       so parallel spans nest across domains AND stay attached to the
       request that spawned them (same trace id, same flight-sampling
       decision). *)
    let parent = Trace.current_id () in
    let ctx = Context.current () in
    let domains =
      Array.init (workers - 1) (fun _ ->
          Domain.spawn (fun () ->
              Context.with_current ctx (fun () ->
                  Trace.with_parent parent run_worker)))
    in
    (* the calling domain is the pool's first worker *)
    (match run_worker () with
    | () -> ()
    | exception e ->
        (* defensive: [worker] catches f's exceptions itself *)
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt))));
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.concat (Array.to_list slots)

let parallel_map ?jobs f a = parallel_init ?jobs (Array.length a) (fun i -> f a.(i))
