let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let default_jobs =
  let cached = lazy (
    match Sys.getenv_opt "DSVC_JOBS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n -> clamp 1 128 n
        | None -> 1))
  in
  fun () -> Lazy.force cached

let recommended_jobs () = Domain.recommended_domain_count ()

(* Chunks are finer than one-per-worker so an unlucky expensive run
   of indices does not serialize the whole call behind one domain. *)
let chunks_per_worker = 8

(* Below this many indices the spawn/join cost dominates any win, and
   callers in tight loops (brute-force enumerations, property tests)
   would otherwise pay one domain spawn per call. *)
let min_parallel = 32

let parallel_init ?(jobs = default_jobs ()) n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  if jobs <= 1 || n < min_parallel then Array.init n f
  else begin
    let workers = clamp 1 n jobs in
    let chunk_size =
      max 1 ((n + (workers * chunks_per_worker) - 1) / (workers * chunks_per_worker))
    in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    (* one slot per chunk: each is written by exactly one domain, and
       the joins order those writes before the final concatenation *)
    let slots = Array.make nchunks [||] in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let rec worker () =
      if Atomic.get failure = None then begin
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let lo = c * chunk_size in
          let hi = min n (lo + chunk_size) in
          (match Array.init (hi - lo) (fun i -> f (lo + i)) with
          | chunk -> slots.(c) <- chunk
          | exception e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          worker ()
        end
      end
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* the calling domain is the pool's first worker *)
    (match worker () with
    | () -> ()
    | exception e ->
        (* defensive: [worker] catches f's exceptions itself *)
        let bt = Printexc.get_raw_backtrace () in
        ignore (Atomic.compare_and_set failure None (Some (e, bt))));
    Array.iter Domain.join domains;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.concat (Array.to_list slots)
  end

let parallel_map ?jobs f a = parallel_init ?jobs (Array.length a) (fun i -> f a.(i))
