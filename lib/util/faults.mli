(** Deterministic fault injection for the store stack.

    Every durability-critical code path in {!Object_store}, {!Repo},
    {!Http}, {!Server} and {!Client} consults this registry at a named
    {e site} before acting, so tests can provoke — deterministically
    and without sleeping or killing processes — the failures a real
    deployment sees: a write that errors partway (ENOSPC), a process
    dying between two phases of a multi-step operation, a torn
    metadata write from a crash without fsync, silent single-byte
    media corruption, and dropped connections.

    When nothing is armed every site is a single mutex-protected
    hashtable probe, so the hooks are safe to leave in production
    builds.

    Well-known sites:
    - ["object_store.write"] — blob writes
    - ["repo.save"] — metadata writes
    - ["repo.journal"] — the optimize journal write
    - ["optimize.after_objects"], ["optimize.after_journal"],
      ["optimize.after_swap"], ["optimize.before_gc"] — crash points
      between the phases of {!Repo.optimize}
    - ["http.write_response"] — the connection drops before the
      response is written (also makes a raising-mid-request server)
    - ["write"] — wildcard matched by every write site *)

type action =
  | Fail of string
      (** the operation writes part of its data, then returns [Error]
          with this message (a clean I/O failure, e.g. disk full) *)
  | Crash
      (** raise {!Injected} before the operation takes effect — the
          process "dies" at this point *)
  | Torn of float
      (** a write persists only this fraction of its bytes, becomes
          visible, then {!Injected} is raised — a crash without fsync *)
  | Corrupt of int
      (** a write silently flips one byte (at this index, modulo the
          length) and reports success — media corruption *)
  | Drop  (** a connection site closes the connection abruptly *)

exception Injected of string
(** Raised by {!guard} / {!on_write} sites for [Crash], [Torn] and
    [Drop] actions; the payload is the site name. *)

val arm : site:string -> ?after:int -> action -> unit
(** Arm [site]: the next consultation after [after] (default 0)
    unaffected passes triggers [action] once, then the site disarms
    itself. Re-arming replaces any previous action. *)

val disarm : site:string -> unit
val reset : unit -> unit
(** Disarm everything and zero all hit counters. Call between tests. *)

val armed : site:string -> bool

val hits : site:string -> int
(** How many times [site] has been consulted since the last {!reset} —
    lets a test count, say, the writes in an [optimize] and then crash
    each one in turn. *)

val check : string -> action option
(** Consult a site: increments its hit counter and returns the armed
    action if its countdown expired (disarming it). Most call sites
    use the higher-level {!guard} / {!on_write} instead. *)

val guard : string -> unit
(** Consult a site and raise {!Injected} if any action triggered —
    the idiom for pure crash points between phases. *)

val crash : string -> 'a
(** Raise {!Injected} unconditionally (used by write helpers after
    making a torn write visible). *)

val on_write :
  string ->
  string ->
  [ `Fail of string * string  (** partial data to write, error message *)
  | `Write of string * bool  (** data to write, crash once it is visible *)
  ]
(** Filter a write of the given content through the site (and through
    the ["write"] wildcard site). [`Write (data, false)] with the
    original content is the no-fault case. Raises {!Injected} for
    [Crash]/[Drop]. *)
