(** Deterministic pseudo-random number generation.

    All randomized components of the library (workload generators,
    property tests, tie-breaking in heuristics) draw from this
    splitmix64 generator so that every experiment is reproducible from
    a single integer seed, independently of the OCaml stdlib [Random]
    state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator determined entirely by
    [seed]. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same
    future stream as [t]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. Useful to
    hand sub-generators to sub-tasks without coupling their
    consumption. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to
    [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] returns [k] distinct integers
    drawn uniformly from [\[0, n)], in increasing order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)
