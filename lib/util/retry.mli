(** Bounded retry with exponential backoff and jitter.

    Used by the store's HTTP client to ride out transient connect and
    read failures, and available to any component that talks to an
    unreliable peer. The backoff schedule is pure ({!delay}) so tests
    can assert on it without sleeping; {!with_policy} accepts injected
    [sleep] and [rand] functions for the same reason. *)

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** backoff ceiling in seconds *)
  multiplier : float;  (** growth factor per retry *)
  jitter : float;
      (** fraction of the delay randomly shaved off, in [0,1]: the
          actual sleep is [delay * (1 - jitter * U[0,1))], decorrelating
          clients that fail in lockstep *)
}

val default : policy
(** 4 attempts, 50 ms base, x2 growth, 2 s cap, 0.5 jitter. *)

val delay : policy -> attempt:int -> rand:float -> float
(** [delay p ~attempt ~rand] is the sleep after the failure of
    0-indexed [attempt], with [rand] in [0,1) supplying the jitter
    draw. Pure. *)

val seeded_rand : seed:int -> unit -> float
(** A {!Prng}-backed uniform draw in [0,1) determined entirely by
    [seed] — equal seeds yield equal jitter schedules, so tests can
    reproduce an exact backoff sequence. This is also what the default
    [rand] uses: seeded from the pid and clock normally (decorrelating
    the thundering herd of clients failing over to a surviving peer
    together), or from [DSVC_RETRY_SEED] when that is set. *)

val with_policy :
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?rand:(unit -> float) ->
  ?on_retry:(attempt:int -> delay:float -> unit) ->
  retryable:('e -> bool) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** Run [f ~attempt:0], retrying while it returns a [retryable] error
    and attempts remain. Returns the first success or the last error.
    [sleep] defaults to [Unix.sleepf]; [rand] defaults to a
    {!Prng}-backed uniform draw seeded from the pid and clock.
    [on_retry] fires exactly once per backoff, before the sleep, with
    the 0-indexed attempt that just failed and the chosen delay; the
    default logs a warning and bumps the [dsvc_client_retries_total]
    counter. *)
