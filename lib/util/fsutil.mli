(** Filesystem primitives shared by the store tier, with durability
    and fault injection built in.

    {!write_file_atomic} is the single write path for blobs, repository
    metadata and the optimize journal: unique temp file in the target
    directory, full write, [fsync], rename, directory [fsync] — so a
    crash leaves either the old file or the new one, never a torn mix,
    and a failed write never leaks its temp file. Every write consults
    {!Faults} at the caller's site, which is how the fault-injection
    tests produce partial writes, torn renames and flipped bytes. *)

val mkdir_p : string -> (unit, string) result

val read_file : string -> (string, string) result

val write_file : string -> string -> (unit, string) result
(** [write_file path content] is the plain, non-durable write path for
    exports and CLI outputs (graph dumps, checkout [-o], bench
    artifacts): a buffered write with no temp file, no [fsync] and no
    fault injection. Persistent repository state must go through
    {!write_file_atomic} instead; the lint's raw-write rule (R1)
    confines the underlying primitives to this module either way. *)

val write_file_atomic :
  ?fsync:bool ->
  ?backup:string ->
  site:string ->
  string ->
  string ->
  (unit, string) result
(** [write_file_atomic ~site path content] durably replaces [path]
    with [content]. [fsync] (default true) syncs the file before the
    rename and the directory after it. [backup], if given and [path]
    already exists, hard-links the previous version to that name
    before the swap (best effort) — the recovery source for torn
    metadata. [site] is the {!Faults} site consulted for injection. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory (persists renames within it). *)
