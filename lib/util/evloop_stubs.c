/* Poller primitives for Evloop (DESIGN.md section 13).

   The OCaml standard library exposes only select(2), whose fd_set
   representation caps usable descriptor *numbers* at FD_SETSIZE
   (1024) — far below what a keep-alive server holds open. These
   stubs provide the two readiness APIs the reactor actually wants:

     - epoll(7) on Linux: a persistent interest set, O(ready) waits.
     - poll(2) everywhere else: no FD_SETSIZE ceiling, O(n) waits.

   plus writev(2) so a response's header and body slices go to the
   socket in one system call without being concatenated first.

   Event bits shared with evloop.ml: 1 = readable, 2 = writable.
   Error/hangup conditions are folded into "readable" so the OCaml
   callback performs a read, observes EOF/ECONNRESET, and tears the
   connection down through its normal path. */

#include <errno.h>
#include <limits.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/uio.h>
#include <unistd.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#define DSVC_EV_READ 1
#define DSVC_EV_WRITE 2

/* On Unix, Unix.file_descr is an immediate int. */

CAMLprim value dsvc_fd_int(value fd) { return Val_int(Int_val(fd)); }

CAMLprim value dsvc_has_epoll(value unit)
{
  (void)unit;
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

#ifdef __linux__

CAMLprim value dsvc_epoll_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(EPOLL_CLOEXEC);
  return Val_int(fd); /* -1 on failure: caller falls back to poll */
}

/* op: 0 = add, 1 = modify, 2 = delete. Returns 0 or -errno. */
CAMLprim value dsvc_epoll_ctl(value v_ep, value v_op, value v_fd, value v_ev)
{
  struct epoll_event ev;
  int bits = Int_val(v_ev);
  int ctl_op;
  memset(&ev, 0, sizeof ev);
  ev.events = 0;
  if (bits & DSVC_EV_READ) ev.events |= EPOLLIN;
  if (bits & DSVC_EV_WRITE) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(v_fd);
  switch (Int_val(v_op)) {
  case 0: ctl_op = EPOLL_CTL_ADD; break;
  case 1: ctl_op = EPOLL_CTL_MOD; break;
  default: ctl_op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(v_ep), ctl_op, Int_val(v_fd), &ev) == -1)
    return Val_int(-errno);
  return Val_int(0);
}

#define DSVC_MAX_EVENTS 256

/* Returns a flat int array [fd0; bits0; fd1; bits1; ...]. An
   interrupted wait (EINTR) reports no events; any other failure
   raises Unix_error. */
CAMLprim value dsvc_epoll_wait(value v_ep, value v_timeout_ms)
{
  CAMLparam2(v_ep, v_timeout_ms);
  CAMLlocal1(res);
  struct epoll_event evs[DSVC_MAX_EVENTS];
  int ep = Int_val(v_ep);
  int timeout = Int_val(v_timeout_ms);
  int n, i;
  caml_release_runtime_system();
  n = epoll_wait(ep, evs, DSVC_MAX_EVENTS, timeout);
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) n = 0;
    else caml_uerror("epoll_wait", Nothing);
  }
  res = caml_alloc(n * 2, 0);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP))
      bits |= DSVC_EV_READ;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP))
      bits |= DSVC_EV_WRITE;
    Store_field(res, i * 2, Val_int(evs[i].data.fd));
    Store_field(res, i * 2 + 1, Val_int(bits));
  }
  CAMLreturn(res);
}

#else /* !__linux__: epoll entry points exist but report unsupported */

CAMLprim value dsvc_epoll_create(value unit)
{
  (void)unit;
  return Val_int(-1);
}

CAMLprim value dsvc_epoll_ctl(value v_ep, value v_op, value v_fd, value v_ev)
{
  (void)v_ep; (void)v_op; (void)v_fd; (void)v_ev;
  return Val_int(-ENOSYS);
}

CAMLprim value dsvc_epoll_wait(value v_ep, value v_timeout_ms)
{
  (void)v_ep; (void)v_timeout_ms;
  caml_failwith("epoll unsupported on this platform");
  return Val_unit;
}

#endif /* __linux__ */

/* poll(2) over parallel arrays: v_fds.(i) with interest bits
   v_bits.(i). Returns an int array of ready bits, same order. */
CAMLprim value dsvc_poll(value v_fds, value v_bits, value v_timeout_ms)
{
  CAMLparam3(v_fds, v_bits, v_timeout_ms);
  CAMLlocal1(res);
  mlsize_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds;
  mlsize_t i;
  int rc;
  if (n != Wosize_val(v_bits)) caml_invalid_argument("dsvc_poll: array sizes");
  pfds = caml_stat_alloc(sizeof(struct pollfd) * (n == 0 ? 1 : n));
  for (i = 0; i < n; i++) {
    int bits = Int_val(Field(v_bits, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = 0;
    pfds[i].revents = 0;
    if (bits & DSVC_EV_READ) pfds[i].events |= POLLIN;
    if (bits & DSVC_EV_WRITE) pfds[i].events |= POLLOUT;
  }
  caml_release_runtime_system();
  rc = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();
  if (rc == -1 && errno != EINTR) {
    caml_stat_free(pfds);
    caml_uerror("poll", Nothing);
  }
  res = caml_alloc(n, 0);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (rc > 0) {
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))
        bits |= DSVC_EV_READ;
      if (pfds[i].revents & (POLLOUT | POLLERR | POLLHUP))
        bits |= DSVC_EV_WRITE;
    }
    Store_field(res, i, Val_int(bits));
  }
  caml_stat_free(pfds);
  CAMLreturn(res);
}

#define DSVC_MAX_IOV 16

/* Vectored write of (string, offset, length) slices. Returns bytes
   written, or -1 if the socket is full (EAGAIN/EWOULDBLOCK/EINTR:
   retry when writable again). Other errors raise Unix_error. The
   runtime lock is deliberately held across the call: the fds are
   nonblocking, so writev cannot block, and holding the lock keeps
   the OCaml string pointers stable (no allocation, no GC). */
CAMLprim value dsvc_writev(value v_fd, value v_slices)
{
  struct iovec iov[DSVC_MAX_IOV];
  mlsize_t n = Wosize_val(v_slices);
  mlsize_t i;
  ssize_t written;
  if (n > DSVC_MAX_IOV) n = DSVC_MAX_IOV;
  for (i = 0; i < n; i++) {
    value slice = Field(v_slices, i);
    iov[i].iov_base = Bytes_val(Field(slice, 0)) + Long_val(Field(slice, 1));
    iov[i].iov_len = Long_val(Field(slice, 2));
  }
  if (n == 0) return Val_long(0);
  written = writev(Int_val(v_fd), iov, (int)n);
  if (written == -1) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return Val_long(-1);
    caml_uerror("writev", Nothing);
  }
  return Val_long(written);
}
