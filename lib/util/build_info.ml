(* Build and process provenance for /health, metrics meta, and the
   bench record. *)

(* The commit the binary runs from, read straight from .git (no
   subprocess — the harness may run where git(1) is absent).
   "unknown" outside a checkout. *)
let git_rev () =
  let read path =
    match Fsutil.read_file path with
    | Ok s -> Some (String.trim s)
    | Error _ -> None
  in
  match read ".git/HEAD" with
  | None -> "unknown"
  | Some head ->
      if String.length head > 5 && String.sub head 0 5 = "ref: " then begin
        let r = String.trim (String.sub head 5 (String.length head - 5)) in
        match read (Filename.concat ".git" r) with
        | Some rev -> rev
        | None -> (
            match read ".git/packed-refs" with
            | None -> "unknown"
            | Some packed ->
                let matches line =
                  match String.index_opt line ' ' with
                  | Some i
                    when String.sub line (i + 1) (String.length line - i - 1)
                         = r ->
                      Some (String.sub line 0 i)
                  | _ -> None
                in
                List.find_map matches (String.split_on_char '\n' packed)
                |> Option.value ~default:"unknown")
      end
      else head

let ocaml_version = Sys.ocaml_version

let start_time = Unix.gettimeofday ()

let uptime () = Float.max 0.0 (Unix.gettimeofday () -. start_time)
