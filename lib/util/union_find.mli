(** Disjoint-set forest with union by rank and path compression.

    Elements are integers in [\[0, n)]. Amortized near-O(1) per
    operation. Used by Kruskal's MST and by storage-graph validity
    checks. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [{0} .. {n-1}]. *)

val size : t -> int
(** Number of elements (not sets). *)

val count_sets : t -> int
(** Current number of disjoint sets. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the sets of [a] and [b]. Returns [true] iff
    they were previously distinct. *)

val same : t -> int -> int -> bool
(** [same t a b] iff [a] and [b] are in one set. *)

val set_size : t -> int -> int
(** Size of the set containing the element. *)
