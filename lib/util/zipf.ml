type t = {
  n : int;
  pmf : float array;   (* index r-1 -> P(rank = r) *)
  cdf : float array;   (* cumulative, cdf.(n-1) = 1.0 *)
}

let create ~n ~exponent =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  let pmf = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** exponent)) in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Array.iteri (fun i p -> pmf.(i) <- p /. total) pmf;
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { n; pmf; cdf }

let n t = t.n

let prob t rank =
  if rank < 1 || rank > t.n then invalid_arg "Zipf.prob: rank out of range";
  t.pmf.(rank - 1)

let masses t = Array.copy t.pmf

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let frequencies t rng ~draws =
  let counts = Array.make t.n 0 in
  for _ = 1 to draws do
    let r = sample t rng in
    counts.(r - 1) <- counts.(r - 1) + 1
  done;
  counts
