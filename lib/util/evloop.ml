(* Readiness reactor behind the event-driven server (DESIGN.md §13).

   One thread owns a loop instance and calls [wait]; callbacks run on
   that thread. Other threads talk to the loop only through [post],
   which enqueues a job and wakes the poller via a self-pipe.

   Three interchangeable poller backends sit behind the same table of
   registered fds: epoll(7) where the platform has it (persistent
   interest set, O(ready) per wait), poll(2) as the portable default
   (no FD_SETSIZE ceiling), and select(2) as a pure-stdlib reference
   backend kept around so the equivalence is testable. DSVC_EVLOOP
   picks explicitly; "auto" prefers epoll, then poll. *)

external has_epoll : unit -> bool = "dsvc_has_epoll"
external fd_int : Unix.file_descr -> int = "dsvc_fd_int"
external epoll_create : unit -> Unix.file_descr = "dsvc_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> int
  = "dsvc_epoll_ctl"

external epoll_wait : Unix.file_descr -> int -> int array = "dsvc_epoll_wait"

external raw_poll : int array -> int array -> int -> int array = "dsvc_poll"

external raw_writev : Unix.file_descr -> (string * int * int) array -> int
  = "dsvc_writev"

(* Event bits shared with the stubs. *)
let ev_read = 1

let ev_write = 2

type event = [ `Read | `Write ]

type entry = {
  e_fd : Unix.file_descr;
  e_num : int;
  mutable e_read : bool;
  mutable e_write : bool;
  e_cb : event -> unit;
}

type backend = Epoll of Unix.file_descr | Poll | Select

type timer = {
  tm_period : float;
  tm_cb : unit -> unit;
  mutable tm_next : float; (* absolute deadline *)
}

type t = {
  backend : backend;
  table : (int, entry) Hashtbl.t;
  jobs : (unit -> unit) Queue.t;
  jobs_mutex : Mutex.t;
  timers : (int, timer) Hashtbl.t;
  mutable next_timer_id : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable closed : bool;
}

let backend_name t =
  match t.backend with Epoll _ -> "epoll" | Poll -> "poll" | Select -> "select"

let bits_of entry =
  (if entry.e_read then ev_read else 0)
  lor if entry.e_write then ev_write else 0

let ctl_check what rc =
  if rc < 0 then
    failwith (Printf.sprintf "Evloop.%s: epoll_ctl failed (errno %d)" what (-rc))

let choose_backend = function
  | Some "select" -> Select
  | Some "poll" -> Poll
  | Some "epoll" | Some "auto" | Some "" | None ->
      if has_epoll () then begin
        let ep = epoll_create () in
        if fd_int ep >= 0 then Epoll ep else Poll
      end
      else Poll
  | Some other ->
      failwith
        (Printf.sprintf
           "DSVC_EVLOOP=%s: expected auto, epoll, poll, or select" other)

let create ?backend () =
  let backend =
    choose_backend
      (match backend with
      | Some _ as b -> b
      | None -> Sys.getenv_opt "DSVC_EVLOOP")
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      backend;
      table = Hashtbl.create 64;
      jobs = Queue.create ();
      jobs_mutex = Mutex.create ();
      timers = Hashtbl.create 4;
      next_timer_id = 0;
      wake_r;
      wake_w;
      closed = false;
    }
  in
  (* The wakeup pipe is a normal registration: draining it is all the
     callback does; the posted jobs run from [wait] itself. *)
  let drain _ =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read wake_r buf 0 64 with
      | n when n = 64 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()
  in
  let entry =
    { e_fd = wake_r; e_num = fd_int wake_r; e_read = true; e_write = false;
      e_cb = drain }
  in
  Hashtbl.replace t.table entry.e_num entry;
  (match backend with
  | Epoll ep -> ctl_check "create" (epoll_ctl ep 0 wake_r ev_read)
  | Poll | Select -> ());
  t

let add t fd ~read ~write cb =
  let entry =
    { e_fd = fd; e_num = fd_int fd; e_read = read; e_write = write; e_cb = cb }
  in
  Hashtbl.replace t.table entry.e_num entry;
  match t.backend with
  | Epoll ep -> ctl_check "add" (epoll_ctl ep 0 fd (bits_of entry))
  | Poll | Select -> ()

let modify t fd ~read ~write =
  match Hashtbl.find_opt t.table (fd_int fd) with
  | None -> ()
  | Some entry ->
      if entry.e_read <> read || entry.e_write <> write then begin
        entry.e_read <- read;
        entry.e_write <- write;
        match t.backend with
        | Epoll ep -> ctl_check "modify" (epoll_ctl ep 1 fd (bits_of entry))
        | Poll | Select -> ()
      end

let remove t fd =
  let num = fd_int fd in
  if Hashtbl.mem t.table num then begin
    Hashtbl.remove t.table num;
    match t.backend with
    | Epoll ep ->
        (* Best effort: a descriptor closed before deregistration has
           already left the epoll set. *)
        ignore (epoll_ctl ep 2 fd 0)
    | Poll | Select -> ()
  end

let post t job =
  Mutex.lock t.jobs_mutex;
  Queue.push job t.jobs;
  Mutex.unlock t.jobs_mutex;
  (* A full pipe already guarantees a pending wakeup. *)
  match Unix.write_substring t.wake_w "x" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _)
    ->
      ()

(* ---- periodic timers ----

   Loop-thread only, like [add]/[modify]/[remove]: a timer is armed
   with an absolute deadline and re-armed from its own firing, so it
   ticks at most once per [wait] and never accumulates a backlog
   after a stall (a late loop fires once, then resumes cadence from
   now). A loop with no timers never reads the clock — behaviour is
   bit-identical to before timers existed. *)

let add_timer t ~period cb =
  if not (period > 0.0) then invalid_arg "Evloop.add_timer: period must be > 0";
  let id = t.next_timer_id in
  t.next_timer_id <- id + 1;
  Hashtbl.replace t.timers id
    { tm_period = period; tm_cb = cb; tm_next = Unix.gettimeofday () +. period };
  id

let cancel_timer t id = Hashtbl.remove t.timers id

let next_timer_deadline t =
  Hashtbl.fold
    (fun _ tm acc -> Float.min tm.tm_next acc)
    t.timers infinity

let run_due_timers t =
  if Hashtbl.length t.timers = 0 then 0
  else begin
    let now = Unix.gettimeofday () in
    let due =
      Hashtbl.fold
        (fun _ tm acc -> if tm.tm_next <= now then tm :: acc else acc)
        t.timers []
    in
    List.iter
      (fun tm ->
        tm.tm_next <- now +. tm.tm_period;
        tm.tm_cb ())
      due;
    List.length due
  end

let run_jobs t =
  let pending = Queue.create () in
  Mutex.lock t.jobs_mutex;
  Queue.transfer t.jobs pending;
  Mutex.unlock t.jobs_mutex;
  let n = Queue.length pending in
  Queue.iter (fun job -> job ()) pending;
  n

(* Dispatch one readiness report. The table is re-consulted (by
   physical equality) before each callback: an earlier callback in the
   same batch may have removed the entry, or even recycled the fd
   number for a brand-new registration. *)
let dispatch t entry bits =
  let live () =
    match Hashtbl.find_opt t.table entry.e_num with
    | Some e -> e == entry
    | None -> false
  in
  let n = ref 0 in
  if bits land ev_read <> 0 && entry.e_read && live () then begin
    incr n;
    entry.e_cb `Read
  end;
  if bits land ev_write <> 0 && entry.e_write && live () then begin
    incr n;
    entry.e_cb `Write
  end;
  !n

let timeout_ms timeout =
  if timeout < 0.0 then -1 else int_of_float (Float.ceil (timeout *. 1000.0))

let wait t ~timeout =
  let dispatched = ref (run_jobs t) in
  (* An armed timer caps the poll: the loop must wake for its
     deadline even when no fd turns ready. Timer-free loops keep the
     caller's timeout untouched (and read no clock). *)
  let timeout =
    if Hashtbl.length t.timers = 0 then timeout
    else begin
      let until = Float.max 0.0 (next_timer_deadline t -. Unix.gettimeofday ()) in
      if timeout < 0.0 then until else Float.min timeout until
    end
  in
  (match t.backend with
  | Epoll ep ->
      let evs = epoll_wait ep (timeout_ms timeout) in
      let n = Array.length evs / 2 in
      for i = 0 to n - 1 do
        match Hashtbl.find_opt t.table evs.(i * 2) with
        | Some entry -> dispatched := !dispatched + dispatch t entry evs.((i * 2) + 1)
        | None -> ()
      done
  | Poll ->
      let entries =
        Hashtbl.fold
          (fun _ e acc -> if e.e_read || e.e_write then e :: acc else acc)
          t.table []
      in
      let arr = Array.of_list entries in
      let fds = Array.map (fun e -> e.e_num) arr in
      let bits = Array.map bits_of arr in
      let res = raw_poll fds bits (timeout_ms timeout) in
      Array.iteri
        (fun i r -> if r <> 0 then dispatched := !dispatched + dispatch t arr.(i) r)
        res
  | Select ->
      let rd, wr =
        Hashtbl.fold
          (fun _ e (rd, wr) ->
            ( (if e.e_read then (e.e_fd, e) :: rd else rd),
              if e.e_write then (e.e_fd, e) :: wr else wr ))
          t.table ([], [])
      in
      let readable, writable, _ =
        match Unix.select (List.map fst rd) (List.map fst wr) [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match List.assq_opt fd rd with
          | Some e -> dispatched := !dispatched + dispatch t e ev_read
          | None -> ())
        readable;
      List.iter
        (fun fd ->
          match List.assq_opt fd wr with
          | Some e -> dispatched := !dispatched + dispatch t e ev_write
          | None -> ())
        writable);
  dispatched := !dispatched + run_due_timers t;
  dispatched := !dispatched + run_jobs t;
  !dispatched

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.backend with
    | Epoll ep -> (
        match Unix.close ep with () -> () | exception Unix.Unix_error _ -> ())
    | Poll | Select -> ());
    List.iter
      (fun fd ->
        match Unix.close fd with
        | () -> ()
        | exception Unix.Unix_error _ -> ())
      [ t.wake_r; t.wake_w ]
  end

let writev fd slices = raw_writev fd slices
