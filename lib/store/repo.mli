(** The prototype dataset version-management system (§5: "we have
    built a prototype version management system, that will serve as a
    foundation to DATAHUB").

    A repository is a directory holding a content-addressed object
    store plus metadata: the version DAG (commits with one or more
    parents — merges are user-performed, and recorded by committing
    with two parents, exactly as the paper's prototype does), named
    branches, and the {e storage plan} mapping every version to either
    a full object or a delta against another version.

    Retrieval ({!checkout}) replays the delta chain; {!optimize}
    re-plans the whole store with any of the paper's algorithms and
    rewrites the objects — the library's storage/recreation tradeoff
    made operational.

    {b Durability and crash safety.} A repository is guarded by an
    exclusive lock file while open ([init]/[open_repo] fail when
    another process holds it; re-opening in the same process shares
    the lock). Metadata saves are atomic and fsynced, keep a [.bak]
    hardlink of the previous generation, and end with a trailer line
    so a torn write is detected as corruption rather than silently
    loading a prefix. {!optimize} runs a two-phase protocol (write
    objects → journal old+new plans → swap metadata → verify → GC);
    a crash at any point is rolled forward or back by [open_repo],
    and {!repair} / {!fsck} recover from damage beyond that. *)

type t

type commit_info = {
  id : int;
  parents : int list;
  message : string;
  timestamp : float;
}

type stats = {
  n_versions : int;
  storage_bytes : int;  (** bytes of referenced objects *)
  n_full : int;  (** materialized versions *)
  n_delta : int;  (** delta-stored versions *)
  max_chain : int;  (** longest delta chain *)
  sum_recreation_bytes : float;
      (** Σ over versions of bytes read along its chain *)
  max_recreation_bytes : float;
}

type strategy =
  | Min_storage  (** Problem 1 — MCA *)
  | Min_recreation  (** Problem 2 — SPT *)
  | Budgeted_sum of float
      (** Problem 3 — LMG with storage budget = factor × MCA cost
          (factor > 1) *)
  | Bounded_max of float
      (** Problem 6 — MP with θ = factor × max SPT distance
          (factor ≥ 1) *)
  | Git_window of int * int  (** GitH with (window, max_depth) *)
  | Svn_skip  (** skip-delta chains in commit order *)

type weights =
  | Uniform  (** every version equally likely — the classic model *)
  | Observed
      (** the telemetry ledger's decayed access frequencies (DESIGN.md
          §15) feed LMG's workload-aware objective (Figure 16) *)

val init : path:string -> (t, string) result
(** Create an empty repository at [path] (directory is created; fails
    if a repository already exists there). The default branch is
    ["main"]. *)

val init_with : store:Object_store.t -> path:string -> (t, string) result
(** {!init} with an explicit blob store — cluster mode plugs the
    {!Replicated} quorum view in here; metadata, lock, and journal
    always stay on the local filesystem. *)

val open_repo : path:string -> (t, string) result
(** Open an existing repository: acquires the lock, loads metadata,
    and — if a crashed {!optimize} left a journal — rolls the
    interrupted re-plan forward (when its plan fully reconstructs) or
    back (otherwise). Fails if another process holds the lock. *)

val open_with : store:Object_store.t -> path:string -> (t, string) result
(** {!open_repo} with an explicit blob store (see {!init_with}). *)

val objects_dir : string -> string
(** The on-disk blob directory under a repository root (where a
    cluster node's {e local} store lives). *)

val object_store : t -> Object_store.t
(** The store this handle reads and writes blobs through. *)

val close : t -> unit
(** Release the repository lock. The handle must not be used after.
    (The lock is also released when the process exits.) *)

val root : t -> string

(* -- committing and retrieving -- *)

val commit :
  t -> ?message:string -> ?parents:int list -> string -> (int, string) result
(** [commit repo content] records a new version of [content] and
    returns its id. Default parents: the current branch head (none
    for the first commit). Multiple [parents] record a user-performed
    merge. The new version is stored as a delta against its first
    parent when that is smaller than storing it in full. Advances the
    current branch. *)

val checkout : t -> int -> (string, string) result
(** Reconstruct a version's content.

    Checkouts go through a small per-handle LRU cache of materialized
    contents (default {!default_cache_slots} slots): a repeat checkout
    of a cached version is O(1), and a checkout whose delta chain
    passes through a cached ancestor replays only the suffix below
    it. Version contents are immutable once committed (optimize and
    repair only re-plan {e how} they are stored), so cached entries
    never go stale. Integrity paths ({!verify}, {!repair}, and
    optimize's post-swap verification) always bypass the cache and
    re-read the store. *)

val checkout_uncached : t -> int -> (string, string) result
(** {!checkout} without consulting or filling the cache — every byte
    is re-read from the object store. Use when the point is to observe
    the on-disk state (integrity checks, corruption tests). *)

val default_cache_slots : int
(** Default bound on cached materializations per open handle (16). *)

val set_cache_slots : t -> int -> unit
(** Re-bound the checkout cache; evicts down to the new bound
    immediately. [0] disables caching entirely (and drops all cached
    entries). Raises [Invalid_argument] on a negative bound. *)

type cache_stats = { hits : int; partial_hits : int; misses : int }
(** [hits]: checkouts served entirely from cache; [partial_hits]:
    chain walks that stopped early at a cached ancestor; [misses]:
    full replays from a materialized root. *)

val cache_stats : t -> cache_stats
(** Counters since the handle was opened. *)

val head : t -> int option
(** Head version of the current branch. *)

val log : t -> commit_info list
(** All commits, newest first. *)

val commit_info : t -> int -> commit_info option

(* -- branches & tags -- *)

val current_branch : t -> string
val branches : t -> (string * int) list

val tag : t -> string -> ?at:int -> unit -> (unit, string) result
(** Name a version permanently (does not move with commits).
    @raise nothing; [Error] on duplicates or unknown versions. *)

val tags : t -> (string * int) list
val resolve : t -> string -> int option
(** Resolve a tag or branch name (tags first), or a numeric string. *)

val create_branch : t -> string -> ?at:int -> unit -> (unit, string) result
(** Create a branch (at [at] or the current head) and switch to it. *)

val switch : t -> string -> (unit, string) result

(* -- inspection & integrity -- *)

val diff : t -> int -> int -> (string, string) result
(** Line diff between two versions, in the store's wire format — what
    would be stored if the second were delta'd against the first. *)

val verify : t -> (unit, string list) result
(** Full integrity check: every version reconstructs, every referenced
    object exists and matches its digest, chains are acyclic. [Error]
    lists every problem found. *)

val import_versions :
  t -> (string * int list * string) list -> (int list, string) result
(** Bulk commit: a list of [(message, parents, content)] — parent ids
    may refer to earlier entries of the same batch via their eventual
    ids. The current branch advances to the last imported version.
    Saves metadata once at the end, so large imports don't rewrite the
    meta file per version. *)

(* -- storage management -- *)

val stats : t -> stats

val storage_parents : t -> (int * int) list
(** The current storage plan as [(parent, child)] pairs, parent 0 =
    materialized — the solution [P] in the paper's notation. *)

val reveal_graph :
  t ->
  ?max_hops:int ->
  ?extra_pairs:(int * int) list ->
  ?jobs:int ->
  unit ->
  (Versioning_core.Aux_graph.t * string array, string) result
(** The repository's revealed ⟨Δ, Φ⟩ instance: materialization costs
    from version sizes and line-diff deltas between versions within
    [max_hops] of each other in the commit DAG (plus [extra_pairs]).
    Also returns the contents array (index [1..n]). This is the
    problem instance {!optimize} solves; export it with
    {!Versioning_core.Graph_io} for offline analysis. [jobs] (default
    {!Versioning_util.Pool.default_jobs}) parallelizes the pair
    diffs — the dominant cost — over the domain pool; the revealed
    graph is identical for every value. *)

val optimize :
  t ->
  ?max_hops:int ->
  ?jobs:int ->
  ?check:bool ->
  ?weights:weights ->
  strategy ->
  (stats, string) result
(** Re-plan storage for all versions: reveal deltas between versions
    within [max_hops] (default 3) of each other in the version DAG,
    run the strategy's algorithm, rewrite objects, and garbage-collect
    unreferenced blobs. [check] (default false, [dsvc optimize
    --check-solutions]) runs {!Versioning_core.Solution_check} on the
    solver's plan against the revealed graph before any object is
    written, refusing to rewrite storage from an invalid solution.
    [jobs] (default
    {!Versioning_util.Pool.default_jobs}) parallelizes the diff and
    delta-encoding phases (and GitH's candidate gather); the resulting
    storage plan is byte-identical for every value — object writes and
    fault-injection sites stay sequential in plan order.

    Crash-safe: new objects are written first (old ones untouched),
    then both the old and intended storage maps are journaled, then
    the metadata is atomically swapped, then every version is
    verified to reconstruct — only after all of that are the journal
    and unreferenced blobs removed. A crash in between is recovered
    by the next {!open_repo}; a verification failure rolls back.

    [weights] (default [Uniform], [dsvc optimize --weights]) switches
    the [Budgeted_sum] (LMG) objective to the access-frequency-
    weighted recreation sum using {!observed_freqs}; with an empty
    ledger, or for any other strategy, the plan is identical to the
    uniform one. *)

(* -- workload telemetry (DESIGN.md §15) -- *)

val telemetry : t -> Versioning_obs.Telemetry.t
(** The handle's per-version access ledger. Checkouts are counted
    unconditionally (clock-free); recreation costs are observed only
    while [Obs.enabled]. Loaded from [.dsvc/telemetry] at open and
    merged across sessions; persisted at {!close} when the gate is
    on. *)

val flush_telemetry : t -> (unit, string) result
(** Persist the ledger now ([Fsutil.write_file_atomic
    ~site:"telemetry.save"]). No-op on an empty ledger. *)

val timeseries : t -> Versioning_obs.Timeseries.t
(** The handle's metrics time-series ring (DESIGN.md §16), fed by the
    server's reactor sampler. Loaded from [.dsvc/timeseries] at open
    (a readable file replaces the fresh ring; a corrupt one is
    ignored); persisted at {!close} when the Obs gate is on and the
    ring is non-empty — with the gate off the file is never written. *)

val flush_timeseries : t -> (unit, string) result
(** Persist the ring now ([Fsutil.write_file_atomic
    ~site:"timeseries.save"]). No-op on an empty ring. *)

val predicted_costs : t -> (int * float) list
(** The current plan's per-version recreation cost in stored bytes
    (Σ object sizes along each delta chain), ascending id — the
    predicted Φ that observations are calibrated against. *)

val drift_score : t -> float
(** {!Versioning_obs.Telemetry.drift} of the ledger against
    {!predicted_costs}: 0 for a workload matching the uniform planning
    assumption, growing as accesses concentrate on expensive versions.
    Walks every stored object (remote reads in cluster mode); the
    result is cached on the handle for {!export_telemetry}. *)

val observed_freqs : t -> float array option
(** Normalized decayed access frequencies indexed [1..n] (index 0
    unused), floored at 1% of uniform; [None] while the ledger is
    empty. This is what [weights:Observed] feeds LMG. *)

val export_telemetry : t -> unit
(** Push ledger gauges and the drift score into the default metrics
    registry (labelled by repository root). No-op while the gate is
    off. Memory-only: the drift gauge carries the last {!drift_score}
    result (0 until one has been computed) — safe to call per request
    under the server's repository lock, even in cluster mode. *)

type drifted = {
  d_version : int;
  d_share : float;  (** observed access share p̂(v) *)
  d_phi : float;  (** predicted recreation cost under the current plan *)
  d_contribution : float;  (** |p̂(v) − 1/n|·Φ(v), its drift-numerator term *)
}

type advice = {
  a_drift : float;
  a_threshold : float;
  a_events : int;  (** ledger accesses the advice is based on *)
  a_top : drifted list;  (** most-mispriced versions, worst first *)
  a_current_weighted : float;
      (** access-weighted Σ recreation of the current plan *)
  a_candidate_weighted : float;
      (** same, for an LMG re-plan under observed frequencies at the
          storage budget the current plan already spends *)
  a_saving : float;  (** relative saving of the candidate, 0..1 *)
  a_recommend : bool;
      (** drift past threshold and the candidate actually cheaper *)
}

val advise :
  t ->
  ?max_hops:int ->
  ?jobs:int ->
  ?threshold:float ->
  ?k:int ->
  unit ->
  (advice, string) result
(** Read-only re-optimization advice: re-derive the current plan's
    predicted Φ on the revealed graph (validated by [Solution_check]),
    score workload drift, and price a candidate re-plan under observed
    frequencies. [threshold] (default 0.5) gates the recommendation;
    [k] (default 5) bounds [a_top]. *)

(* -- repair -- *)

type repair_report = {
  quarantined : string list;
      (** digests of corrupt blobs moved to the quarantine area *)
  rematerialized : int list;
      (** versions whose broken chains were rebuilt as full objects *)
  unrecoverable : int list;
      (** versions no surviving object can reconstruct *)
  strays_removed : int;  (** unreferenced blobs GC'd (0 unless fully repaired) *)
}

val repair : t -> (repair_report, string) result
(** Best-effort recovery: quarantine digest-failing blobs, then
    recover every version content still reachable over intact delta
    edges — across the current storage map {e and} any pending
    optimize journal's old/new maps — and re-materialize broken
    versions as full objects. Unreferenced blobs are only collected
    when every version was recovered. *)

type fsck_result = {
  actions : string list;  (** what repair did (empty without [~repair:true]) *)
  problems : string list;  (** what {!verify} still reports afterwards *)
}

val fsck : path:string -> repair:bool -> (fsck_result, string) result
(** Check (and with [~repair:true], repair) the repository at [path].
    Repair mode can additionally restore the metadata file from its
    [.bak] generation when the current one is torn or corrupt (the
    damaged file is kept as [meta.corrupt]). *)

val fsck_with :
  store:Object_store.t ->
  path:string ->
  repair:bool ->
  (fsck_result, string) result
(** {!fsck} against an explicit store — pass a {!Replicated} view to
    check a cluster node that holds only its shard locally. *)

(* -- metadata replication (cluster mode) -- *)

val generation : t -> int
(** Monotonic metadata generation: bumped on every durable save,
    recorded in the meta file ([gen N]; 0 for pre-cluster repos). *)

val export_meta : t -> (string, string) result
(** The current on-disk metadata bytes, for pushing to peers
    ([POST /meta/sync]). Byte-identical adoption keeps every node's
    meta file directly comparable. *)

val adopt_meta : t -> string -> (bool, string) result
(** Adopt pushed metadata if it parses and its generation is strictly
    newer than ours ([Ok true]); otherwise leave state untouched
    ([Ok false] — stale or duplicate pushes are idempotent no-ops).
    The single-writer model (DESIGN.md §12): one node accepts
    mutations at a time, so newest-generation-wins cannot lose
    concurrent updates. *)

val referenced_digests : t -> string list
(** Every digest the current storage map references (anti-entropy's
    work list). *)

val journal_pending : t -> bool
(** Whether an interrupted-optimize journal is still on disk (surfaced
    by [GET /health]). *)
