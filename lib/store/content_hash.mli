(** Content addressing for the object store.

    A 128-bit FNV-1a hash rendered as 32 hex characters. Not
    cryptographic — the store is a single-writer prototype (like the
    paper's), and the hash only needs to make accidental collisions
    negligible; DESIGN.md records this substitution for SHA-1. *)

val hex : string -> string
(** [hex content] is the 32-character lowercase hex digest. *)

val is_valid : string -> bool
(** Whether a string is a well-formed digest. *)

(** {2 Incremental hashing}

    The same digest computed over a sequence of chunks, for streamed
    reads that verify without materializing the whole blob:
    [finish] after [feed]ing chunks [c1; …; cn] equals
    [hex (String.concat "" [c1; …; cn])]. *)

type state

val init : unit -> state

val feed : state -> string -> unit

val feed_sub : state -> string -> int -> int -> unit
(** [feed_sub st s off len] folds the substring [s.[off .. off+len-1]]. *)

val finish : state -> string
(** The digest of everything fed so far (the state stays usable, but
    feeding more bytes after [finish] changes later results). *)
