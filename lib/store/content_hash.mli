(** Content addressing for the object store.

    A 128-bit FNV-1a hash rendered as 32 hex characters. Not
    cryptographic — the store is a single-writer prototype (like the
    paper's), and the hash only needs to make accidental collisions
    negligible; DESIGN.md records this substitution for SHA-1. *)

val hex : string -> string
(** [hex content] is the 32-character lowercase hex digest. *)

val is_valid : string -> bool
(** Whether a string is a well-formed digest. *)
