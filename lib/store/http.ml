module Faults = Versioning_util.Faults

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
  version : string;
}

(* A response body is either in memory or streamed in chunks pulled on
   demand (zero-copy blob serving: the server writes each chunk
   straight to the socket instead of materializing the whole body).
   [stream_length] is the exact logical size — responses are always
   Content-Length framed, streamed or not, so keep-alive works. *)
type body_stream = {
  stream_length : int;
  read_chunk : unit -> (string option, string) result;
  close_stream : unit -> unit;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
  stream : body_stream option;
}

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let ok ?(content_type = "text/plain; charset=utf-8") ?(headers = []) body =
  { status = 200; content_type; headers; body; stream = None }

let ok_stream ?(content_type = "application/octet-stream") stream =
  { status = 200; content_type; headers = []; body = ""; stream = Some stream }

let error status body =
  {
    status;
    content_type = "text/plain; charset=utf-8";
    headers = [];
    body;
    stream = None;
  }

let body_length resp =
  match resp.stream with
  | Some s -> s.stream_length
  | None -> String.length resp.body

(* Materialize a response body (drains a stream — single use). Test
   and tooling convenience; the server never calls it. *)
let response_body resp =
  match resp.stream with
  | None -> Ok resp.body
  | Some s ->
      let buf = Buffer.create s.stream_length in
      let rec go () =
        match s.read_chunk () with
        | Ok (Some chunk) ->
            Buffer.add_string buf chunk;
            go ()
        | Ok None ->
            s.close_stream ();
            Ok (Buffer.contents buf)
        | Error e ->
            s.close_stream ();
            Error e
      in
      go ()

(* ---- percent decoding --------------------------------------------

   Two deliberately distinct decoders: "+" means space only inside
   query strings (application/x-www-form-urlencoded); in a request
   *path* a literal "+" is just a plus — a blob digest or version
   name containing one must survive the round trip. *)

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode ~plus_is_space s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' when plus_is_space -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let percent_decode s = decode ~plus_is_space:false s

let percent_decode_query s = decode ~plus_is_space:true s

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( percent_decode_query (String.sub kv 0 i),
                   percent_decode_query
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
           | None ->
               if kv = "" then None else Some (percent_decode_query kv, ""))

(* ---- shared request-line / header parsing ------------------------ *)

let ( let* ) = Result.bind

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ m; t; version ]
    when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      Ok (String.uppercase_ascii m, t, version)
  | _ -> Error ("malformed request line: " ^ line)

let parse_header_line line =
  match String.index_opt line ':' with
  | Some i ->
      let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      Ok (name, value)
  | None -> Error ("malformed header: " ^ line)

let split_target target =
  match String.index_opt target '?' with
  | Some i ->
      ( String.sub target 0 i,
        parse_query (String.sub target (i + 1) (String.length target - i - 1))
      )
  | None -> (target, [])

(* Request-smuggling hygiene: a request whose framing is ambiguous is
   rejected outright. More than one Content-Length header — or one
   header carrying a list — never has an innocent explanation
   (RFC 9112 §6.3). The status distinguishes "you sent garbage" (400)
   from "you sent more than this server accepts" (413). *)
let body_length_of_headers ~max_body headers =
  match
    List.filter_map
      (fun (name, v) -> if name = "content-length" then Some v else None)
      headers
  with
  | [] -> Ok 0
  | [ v ] -> (
      if String.contains v ',' then
        Error (400, "conflicting content-length values")
      else
        match int_of_string_opt (String.trim v) with
        | Some len when len >= 0 ->
            if len <= max_body then Ok len else Error (413, "body too large")
        | Some _ | None -> Error (400, "bad content-length"))
  | _ :: _ -> Error (400, "duplicate content-length header")

let keep_alive (req : request) =
  match
    Option.map String.lowercase_ascii (List.assoc_opt "connection" req.headers)
  with
  | Some "close" -> false
  | Some v when String.trim v = "keep-alive" -> true
  | Some _ | None -> req.version <> "HTTP/1.0"

(* ---- incremental parser ------------------------------------------

   The event loop's per-connection state machine: bytes in via [feed],
   framed requests out via [next]. Bounded on both axes — the header
   block by [max_header_bytes], the body by [max_body_bytes] — so a
   hostile or broken peer cannot grow the buffer without limit.
   Pipelining falls out naturally: leftover bytes after one request
   are the start of the next. *)
module Parser = struct
  type limits = { max_header_bytes : int; max_body_bytes : int }

  let default_limits =
    { max_header_bytes = 16 * 1024; max_body_bytes = 64 * 1024 * 1024 }

  type reject = { reject_status : int; reject_reason : string }

  (* What we know mid-request once the header block has been parsed. *)
  type pending = {
    p_meth : string;
    p_path : string;
    p_query : (string * string) list;
    p_headers : (string * string) list;
    p_version : string;
    p_body_len : int;
  }

  type state = Idle | In_headers | In_body of pending | Rejected of reject

  type t = {
    limits : limits;
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable fill : int;  (* one past the last byte *)
    mutable scanned : int;  (* CRLFCRLF scan resume point *)
    mutable state : state;
  }

  let create ?(limits = default_limits) () =
    {
      limits;
      buf = Bytes.create 4096;
      start = 0;
      fill = 0;
      scanned = 0;
      state = Idle;
    }

  let buffered t = t.fill - t.start

  (* Mid-request iff we hold bytes of an unfinished request: decides
     whether a read timeout is a 408 (peer stalled mid-request) or a
     silent close (keep-alive connection gone idle). *)
  let in_request t =
    match t.state with
    | In_headers | In_body _ -> true
    | Rejected _ -> false
    | Idle -> buffered t > 0

  let ensure_capacity t extra =
    let len = Bytes.length t.buf in
    if t.fill + extra <= len then ()
    else begin
      let used = buffered t in
      if used + extra <= len then begin
        (* compact: slide live bytes to the front *)
        Bytes.blit t.buf t.start t.buf 0 used;
        t.scanned <- t.scanned - t.start;
        t.start <- 0;
        t.fill <- used
      end
      else begin
        let cap = ref (len * 2) in
        while used + extra > !cap do
          cap := !cap * 2
        done;
        let nbuf = Bytes.create !cap in
        Bytes.blit t.buf t.start nbuf 0 used;
        t.buf <- nbuf;
        t.scanned <- t.scanned - t.start;
        t.start <- 0;
        t.fill <- used
      end
    end

  let feed t src off len =
    ensure_capacity t len;
    Bytes.blit src off t.buf t.fill len;
    t.fill <- t.fill + len

  let feed_string t s = feed t (Bytes.of_string s) 0 (String.length s)

  let reject t status reason =
    let r = { reject_status = status; reject_reason = reason } in
    t.state <- Rejected r;
    `Reject r

  (* Find "\r\n\r\n" from [scanned] on; remembers progress so repeated
     partial feeds stay O(total bytes). *)
  let find_header_end t =
    let limit = t.fill - 3 in
    let i = ref (max t.start t.scanned) in
    let found = ref (-1) in
    while !found < 0 && !i < limit do
      if
        Bytes.get t.buf !i = '\r'
        && Bytes.get t.buf (!i + 1) = '\n'
        && Bytes.get t.buf (!i + 2) = '\r'
        && Bytes.get t.buf (!i + 3) = '\n'
      then found := !i
      else incr i
    done;
    t.scanned <- (if !found >= 0 then !found else max t.start (t.fill - 3));
    !found

  let parse_header_block t hend =
    let text = Bytes.sub_string t.buf t.start (hend - t.start) in
    t.start <- hend + 4;
    t.scanned <- t.start;
    match String.split_on_char '\n' text with
    | [] -> Error (400, "empty request")
    | first :: rest -> (
        let strip l =
          if String.length l > 0 && l.[String.length l - 1] = '\r' then
            String.sub l 0 (String.length l - 1)
          else l
        in
        match parse_request_line (strip first) with
        | Error e -> Error (400, e)
        | Ok (meth, target, version) -> (
            let rec headers acc = function
              | [] -> Ok (List.rev acc)
              | l :: tl -> (
                  let l = strip l in
                  if l = "" then headers acc tl
                  else
                    match parse_header_line l with
                    | Ok kv -> headers (kv :: acc) tl
                    | Error e -> Error (400, e))
            in
            match headers [] rest with
            | Error e -> Error e
            | Ok hs -> (
                match
                  body_length_of_headers
                    ~max_body:t.limits.max_body_bytes hs
                with
                | Error e -> Error e
                | Ok body_len ->
                    let path, query = split_target target in
                    Ok
                      {
                        p_meth = meth;
                        p_path = percent_decode path;
                        p_query = query;
                        p_headers = hs;
                        p_version = version;
                        p_body_len = body_len;
                      })))

  let request_of_pending t p =
    let body = Bytes.sub_string t.buf t.start p.p_body_len in
    t.start <- t.start + p.p_body_len;
    t.scanned <- t.start;
    t.state <- Idle;
    if buffered t = 0 then begin
      t.start <- 0;
      t.fill <- 0;
      t.scanned <- 0
    end;
    {
      meth = p.p_meth;
      path = p.p_path;
      query = p.p_query;
      headers = p.p_headers;
      body;
      version = p.p_version;
    }

  (* Pull the next complete request out of the buffer. [`Partial]
     means "feed me more"; [`Reject] is sticky — the connection is
     beyond saving once framing is ambiguous. *)
  let rec next t =
    match t.state with
    | Rejected r -> `Reject r
    | In_body p ->
        if buffered t >= p.p_body_len then `Request (request_of_pending t p)
        else `Partial
    | Idle | In_headers -> (
        if buffered t = 0 then `Partial
        else begin
          t.state <- In_headers;
          let hend = find_header_end t in
          if hend < 0 then
            if buffered t > t.limits.max_header_bytes then
              reject t 413 "header block too large"
            else `Partial
          else if hend - t.start > t.limits.max_header_bytes then
            reject t 413 "header block too large"
          else
            match parse_header_block t hend with
            | Error (status, reason) -> reject t status reason
            | Ok p ->
                t.state <- In_body p;
                next t
        end)
end

(* ---- blocking channel API (client responses, tests, tools) ------- *)

let read_line_crlf ic =
  match In_channel.input_line ic with
  | None -> Error "unexpected end of stream"
  | Some line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Ok line

let read_request ?(max_body = 64 * 1024 * 1024) ic =
  let* request_line = read_line_crlf ic in
  let* meth, target, version = parse_request_line request_line in
  let path, query = split_target target in
  let rec read_headers acc =
    let* line = read_line_crlf ic in
    if line = "" then Ok (List.rev acc)
    else
      let* kv = parse_header_line line in
      read_headers (kv :: acc)
  in
  let* headers = read_headers [] in
  let* body =
    match body_length_of_headers ~max_body headers with
    | Error (_, reason) -> Error reason
    | Ok 0 -> Ok ""
    | Ok len -> (
        try Ok (really_input_string ic len)
        with End_of_file -> Error "truncated body")
  in
  Ok { meth; path = percent_decode path; query; headers; body; version }

(* A header value must not smuggle CR/LF into the response framing,
   whatever the handler put in it. *)
let sanitize_header_value v =
  String.map (function '\r' | '\n' -> ' ' | c -> c) v

(* The serialized status line + headers, terminated by CRLFCRLF; the
   body travels separately (as one string or as stream chunks), so the
   writer can hand header and body slices to writev together. *)
let serialize_header ?(keep_alive = false) resp =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status (status_text resp.status));
  Buffer.add_string buf
    (Printf.sprintf "Content-Type: %s\r\n" resp.content_type);
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf
        (Printf.sprintf "%s: %s\r\n" (sanitize_header_value name)
           (sanitize_header_value value)))
    resp.headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (body_length resp));
  Buffer.add_string buf
    (if keep_alive then "Connection: keep-alive\r\n\r\n"
     else "Connection: close\r\n\r\n");
  Buffer.contents buf

let write_response oc resp =
  (* Fault-injection point: a [Drop] armed here models the peer
     vanishing before the response is written. *)
  Faults.guard "http.write_response";
  output_string oc (serialize_header ~keep_alive:false resp);
  (match resp.stream with
  | None -> output_string oc resp.body
  | Some s ->
      let rec go () =
        match s.read_chunk () with
        | Ok (Some chunk) ->
            output_string oc chunk;
            go ()
        | Ok None -> s.close_stream ()
        | Error _ ->
            (* Headers are gone; all we can do is cut the body short
               so the Content-Length mismatch surfaces client-side. *)
            s.close_stream ()
      in
      go ());
  flush oc
