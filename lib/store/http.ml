module Faults = Versioning_util.Faults

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
  body : string;
}

let status_text = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let ok ?(content_type = "text/plain; charset=utf-8") ?(headers = []) body =
  { status = 200; content_type; headers; body }

let error status body =
  { status; content_type = "text/plain; charset=utf-8"; headers = []; body }

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n -> (
        match (hex s.[!i + 1], hex s.[!i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
               Some
                 ( percent_decode (String.sub kv 0 i),
                   percent_decode
                     (String.sub kv (i + 1) (String.length kv - i - 1)) )
           | None -> if kv = "" then None else Some (percent_decode kv, ""))

let read_line_crlf ic =
  match In_channel.input_line ic with
  | None -> Error "unexpected end of stream"
  | Some line ->
      let line =
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Ok line

let ( let* ) = Result.bind

let read_request ?(max_body = 64 * 1024 * 1024) ic =
  let* request_line = read_line_crlf ic in
  let* meth, target =
    match String.split_on_char ' ' request_line with
    | [ m; t; _version ] -> Ok (String.uppercase_ascii m, t)
    | _ -> Error ("malformed request line: " ^ request_line)
  in
  let path, query =
    match String.index_opt target '?' with
    | Some i ->
        ( String.sub target 0 i,
          parse_query (String.sub target (i + 1) (String.length target - i - 1))
        )
    | None -> (target, [])
  in
  let rec read_headers acc =
    let* line = read_line_crlf ic in
    if line = "" then Ok (List.rev acc)
    else
      match String.index_opt line ':' with
      | Some i ->
          let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
          let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          read_headers ((name, value) :: acc)
      | None -> Error ("malformed header: " ^ line)
  in
  let* headers = read_headers [] in
  let* body =
    match List.assoc_opt "content-length" headers with
    | None -> Ok ""
    | Some l -> (
        match int_of_string_opt l with
        | Some len when len >= 0 && len <= max_body -> (
            try Ok (really_input_string ic len)
            with End_of_file -> Error "truncated body")
        | Some _ -> Error "body too large"
        | None -> Error "bad content-length")
  in
  Ok { meth; path = percent_decode path; query; headers; body }

(* A header value must not smuggle CR/LF into the response framing,
   whatever the handler put in it. *)
let sanitize_header_value v =
  String.map (function '\r' | '\n' -> ' ' | c -> c) v

let write_response oc { status; content_type; headers; body } =
  (* Fault-injection point: a [Drop] armed here models the peer
     vanishing before the response is written. *)
  Faults.guard "http.write_response";
  output_string oc
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  output_string oc (Printf.sprintf "Content-Type: %s\r\n" content_type);
  List.iter
    (fun (name, value) ->
      output_string oc
        (Printf.sprintf "%s: %s\r\n" (sanitize_header_value name)
           (sanitize_header_value value)))
    headers;
  output_string oc
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  output_string oc "Connection: close\r\n\r\n";
  output_string oc body;
  flush oc
