module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace

let log_src = Logs.Src.create "dsvc.cluster" ~doc:"Replicated store"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  self : string;
  replicas : int;
  ring : Ring.t;
  backends : (string * Backend.t) list;  (* ring order irrelevant; incl self *)
  detector : Detector.t;
  now : unit -> float;
  mutex : Mutex.t;
  (* Hinted handoff ledger: [(intended_owner, digest)] copies parked on
     a stand-in node while the owner was down, delivered by
     {!anti_entropy}; the value is the hint's creation time so
     {!export_lag_metrics} can report per-owner queue age. In-memory
     only — a hint lost to a process death is re-derived by the full
     anti-entropy sweep. *)
  hints : (string * string, float) Hashtbl.t;
  (* Owners that have ever had a hint parked: drained queues must keep
     reporting depth 0 / age 0 instead of a stale last value. *)
  lag_owners : (string, unit) Hashtbl.t;
}

type report = { checked : int; repaired : int; failed : string list }

let create ?(replicas = 2) ?vnodes ?detector ?(now = Unix.gettimeofday) ~self
    ~self_backend ~peers () =
  let backends = (self, self_backend) :: peers in
  let members = List.map fst backends in
  let ring = Ring.create ?vnodes ~members () in
  let detector =
    match detector with Some d -> d | None -> Detector.create ()
  in
  {
    self;
    replicas = max 1 (min replicas (List.length members));
    ring;
    backends;
    detector;
    now;
    mutex = Mutex.create ();
    hints = Hashtbl.create 16;
    lag_owners = Hashtbl.create 4;
  }

let self t = t.self
let replicas t = t.replicas
let ring_epoch t = Ring.epoch t.ring
let members t = Ring.members t.ring
let backend_of t name = List.assoc name t.backends

let usable t name = name = t.self || Detector.usable t.detector ~name

let peers t =
  List.filter_map
    (fun (name, _) ->
      if name = t.self then None
      else
        let state = Detector.state t.detector ~name in
        let err =
          List.assoc_opt name
            (List.map (fun (n, _, e) -> (n, e)) (Detector.report t.detector))
        in
        Some (name, state, Option.value ~default:"" err))
    t.backends

let quorum t = (t.replicas / 2) + 1

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add_hint t ~owner ~digest =
  let created = t.now () in
  with_lock t (fun () ->
      (* A re-parked copy keeps its original timestamp: the owner's
         debt is as old as its first miss. *)
      if not (Hashtbl.mem t.hints (owner, digest)) then
        Hashtbl.replace t.hints (owner, digest) created;
      Hashtbl.replace t.lag_owners owner ());
  Metrics.counter "dsvc_cluster_hints_total"
    ~labels:[ ("owner", owner) ]
    ~help:"Hinted-handoff copies parked for a down owner"

let pending_hints t = with_lock t (fun () -> Hashtbl.length t.hints)

(* Replication-lag gauges from the hint ledger: per-owner queue depth
   and oldest-hint age. Owners whose queue has fully drained are
   reported as 0/0 (not dropped) so dashboards and the sampler see the
   recovery, not a stale last value. Gauges are emitted after the
   ledger lock is released — the with_lock region stays Hashtbl-only. *)
let export_lag_metrics t =
  let now = t.now () in
  let depth : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let oldest : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let owners =
    with_lock t (fun () ->
        Hashtbl.iter
          (fun (owner, _) created ->
            Hashtbl.replace depth owner
              (1 + Option.value (Hashtbl.find_opt depth owner) ~default:0);
            let age = Float.max 0.0 (now -. created) in
            match Hashtbl.find_opt oldest owner with
            | Some a when a >= age -> ()
            | _ -> Hashtbl.replace oldest owner age)
          t.hints;
        Hashtbl.fold (fun o () acc -> o :: acc) t.lag_owners [])
  in
  List.iter
    (fun owner ->
      Metrics.gauge "dsvc_cluster_hint_queue_depth"
        ~labels:[ ("owner", owner) ]
        ~help:"Hinted-handoff copies still parked, by intended owner"
        (float_of_int
           (Option.value (Hashtbl.find_opt depth owner) ~default:0));
      Metrics.gauge "dsvc_cluster_hint_oldest_age_seconds"
        ~labels:[ ("owner", owner) ]
        ~help:"Age of the oldest parked hint, by intended owner"
        (Option.value (Hashtbl.find_opt oldest owner) ~default:0.0))
    (List.sort compare owners)

(* Run one backend operation against one member, feeding the failure
   detector. Failover decisions elsewhere key off the updated state. *)
let probe_result t name result =
  (match result with
  | Ok _ -> if name <> t.self then Detector.ok t.detector ~name
  | Error e ->
      if name <> t.self then begin
        Detector.fail t.detector ~name e;
        Metrics.counter "dsvc_cluster_peer_errors_total"
          ~labels:[ ("peer", name) ]
          ~help:"Failed exchanges with a peer, pre-detector";
        Log.warn (fun m -> m "peer %s error: %s" name e)
      end);
  result

let quorum_outcome ~op outcome =
  Metrics.counter "dsvc_cluster_quorum_total"
    ~labels:[ ("op", op); ("outcome", outcome) ]
    ~help:"Quorum decisions by operation and outcome"

let put t ~digest content =
  Trace.with_span "cluster.put" @@ fun () ->
  let owners = Ring.owners t.ring digest ~n:t.replicas in
  let stored = ref [] in
  let failed_owners = ref [] in
  let try_put name =
    let b = backend_of t name in
    match probe_result t name (b.Backend.put ~digest content) with
    | Ok () ->
        stored := name :: !stored;
        true
    | Error _ -> false
  in
  List.iter
    (fun owner ->
      if usable t owner then begin
        if not (try_put owner) then failed_owners := owner :: !failed_owners
      end
      else failed_owners := owner :: !failed_owners)
    owners;
  (* Hinted handoff: each unreachable owner's copy goes to the next
     usable non-owner on the ring, and a hint records the debt. *)
  let handoff_candidates =
    List.filter
      (fun name -> (not (List.mem name owners)) && usable t name)
      (Ring.sequence t.ring digest)
  in
  let candidates = ref handoff_candidates in
  List.iter
    (fun owner ->
      let rec place () =
        match !candidates with
        | [] -> ()
        | c :: rest ->
            candidates := rest;
            if List.mem c !stored then place ()
            else if try_put c then begin
              add_hint t ~owner ~digest;
              Log.warn (fun m ->
                  m "handoff: %s holds %s for down owner %s" c digest owner)
            end
            else place ()
      in
      place ())
    (List.rev !failed_owners);
  let n = List.length !stored in
  if n >= quorum t then begin
    quorum_outcome ~op:"put" (if n >= t.replicas then "ok" else "degraded");
    Ok ()
  end
  else begin
    quorum_outcome ~op:"put" "failed";
    Error
      (Printf.sprintf "write quorum not reached for %s (%d/%d, need %d)"
         digest n t.replicas (quorum t))
  end

let get t ~digest =
  Trace.with_span "cluster.get" @@ fun () ->
  let owners = Ring.owners t.ring digest ~n:t.replicas in
  let order = Ring.sequence t.ring digest in
  (* Owners we observed failing before a good copy turned up; those
     get repaired from the copy we return. *)
  let missed = ref [] in
  let rec read = function
    | [] -> Error (Printf.sprintf "object %s not found on any replica" digest)
    | name :: rest ->
        let miss () =
          if List.mem name owners then missed := name :: !missed;
          read rest
        in
        if not (usable t name) then miss ()
        else
          let b = backend_of t name in
          match probe_result t name (b.Backend.get ~digest) with
          | Error _ -> miss ()
          | Ok content ->
              (* Verify per replica: a stale or bit-flipped copy on one
                 node must not win the race just for being first. *)
              if Content_hash.hex content <> digest then begin
                Metrics.counter "dsvc_cluster_replica_corrupt_total"
                  ~labels:[ ("peer", name) ]
                  ~help:"Replica reads failing digest verification";
                Log.warn (fun m ->
                    m "replica %s returned corrupt copy of %s" name digest);
                miss ()
              end
              else begin
                let primary = match order with p :: _ -> p | [] -> "" in
                if name <> primary then
                  Metrics.counter "dsvc_cluster_failover_total"
                    ~labels:[ ("op", "get") ]
                    ~help:"Reads served by a non-primary replica";
                List.iter
                  (fun owner ->
                    if usable t owner then begin
                      let ob = backend_of t owner in
                      (* A corrupt copy still answers [mem], and [put]
                         is idempotent — drop it first or the repair
                         write silently no-ops. *)
                      ob.Backend.delete ~digest;
                      match
                        probe_result t owner (ob.Backend.put ~digest content)
                      with
                      | Ok () ->
                          Metrics.counter "dsvc_cluster_read_repair_total"
                            ~labels:[ ("peer", owner) ]
                            ~help:"Missing/stale replicas rewritten during reads";
                          Log.info (fun m ->
                              m "read-repair: restored %s on %s" digest owner)
                      | Error _ -> ()
                    end)
                  !missed;
                Ok content
              end
  in
  read order

let mem t ~digest =
  List.exists
    (fun name ->
      usable t name
      &&
      let b = backend_of t name in
      b.Backend.mem ~digest)
    (Ring.sequence t.ring digest)

let delete t ~digest =
  List.iter
    (fun (name, b) -> if usable t name then b.Backend.delete ~digest)
    t.backends

let list t =
  let union : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (name, b) ->
      if usable t name then
        match b.Backend.list () with
        | entries ->
            List.iter
              (fun (digest, size) ->
                match Hashtbl.find_opt union digest with
                | Some s when s >= size -> ()
                | _ -> Hashtbl.replace union digest size)
              entries
        | exception _ -> ((* lint: swallow-ok a peer dying mid-list must
                             not take down a stats request *)))
    t.backends;
  Hashtbl.fold (fun d s acc -> (d, s) :: acc) union [] |> List.sort compare

let total_bytes t =
  List.fold_left (fun acc (_, size) -> acc + size) 0 (list t)

let quarantine t ~digest =
  let rec go last = function
    | [] -> Error last
    | name :: rest ->
        if not (usable t name) then go last rest
        else
          let b = backend_of t name in
          (match b.Backend.quarantine ~digest with
          | Ok _ as ok ->
              (* Quarantine everywhere else too (best effort): the whole
                 point is taking the bad copy out of circulation. *)
              List.iter
                (fun n ->
                  if n <> name && usable t n then
                    ignore ((backend_of t n).Backend.quarantine ~digest))
                rest;
              ok
          | Error e -> go e rest)
  in
  go (Printf.sprintf "object %s not found" digest) (Ring.sequence t.ring digest)

(* Actively ping every peer — including ones deep in probation — and
   feed the detector. The rejoin path calls this first: a node that
   just restarted must flip to Up now, not when its probation happens
   to expire, or the sweep would skip exactly the node it exists to
   repair. *)
let probe t =
  List.iter
    (fun (name, b) ->
      if name <> t.self then ignore (probe_result t name (b.Backend.ping ())))
    t.backends

let deliver_hints t =
  let entries =
    with_lock t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.hints [])
  in
  List.fold_left
    (fun delivered (owner, digest) ->
      if not (usable t owner) then delivered
      else
        match get t ~digest with
        | Error _ ->
            (* No surviving copy — drop the hint; the blob is gone
               beyond what handoff can fix and fsck will say so. *)
            with_lock t (fun () -> Hashtbl.remove t.hints (owner, digest));
            delivered
        | Ok content -> (
            let b = backend_of t owner in
            match probe_result t owner (b.Backend.put ~digest content) with
            | Ok () ->
                with_lock t (fun () ->
                    Hashtbl.remove t.hints (owner, digest));
                Metrics.counter "dsvc_cluster_hints_delivered_total"
                  ~help:"Hinted-handoff copies delivered to their owner";
                Metrics.counter "dsvc_cluster_anti_entropy_repaired_bytes_total"
                  ~by:(float_of_int (String.length content))
                  ~help:"Bytes rewritten restoring replication (repairs + delivered hints)";
                delivered + 1
            | Error _ -> delivered))
    0 entries

let anti_entropy t ~digests =
  Trace.with_span "cluster.anti_entropy" @@ fun () ->
  Metrics.time "dsvc_cluster_anti_entropy_seconds"
    ~help:"Wall-clock duration of anti-entropy sweeps"
  @@ fun () ->
  probe t;
  let delivered = deliver_hints t in
  let repaired = ref delivered in
  let failed = ref [] in
  List.iter
    (fun digest ->
      match get t ~digest with
      | Error e -> failed := (digest ^ ": " ^ e) :: !failed
      | Ok content ->
          List.iter
            (fun owner ->
              if usable t owner then
                let b = backend_of t owner in
                (* Verify the owner's copy, not just its presence — the
                   sweep is the rejoin path and must also replace blobs
                   a crash or bit-flip damaged ([mem] can't see that,
                   and an idempotent [put] over a corrupt copy no-ops). *)
                let healthy =
                  match b.Backend.get ~digest with
                  | Ok c -> Content_hash.hex c = digest
                  | Error _ -> false
                in
                if not healthy then begin
                  b.Backend.delete ~digest;
                  match probe_result t owner (b.Backend.put ~digest content) with
                  | Ok () ->
                      incr repaired;
                      Metrics.counter
                        "dsvc_cluster_anti_entropy_repaired_bytes_total"
                        ~by:(float_of_int (String.length content))
                        ~help:"Bytes rewritten restoring replication (repairs + delivered hints)"
                  | Error e ->
                      failed := (digest ^ " on " ^ owner ^ ": " ^ e) :: !failed
                end)
            (Ring.owners t.ring digest ~n:t.replicas))
    digests;
  Metrics.counter "dsvc_cluster_anti_entropy_total"
    ~labels:
      [ ("outcome", (if !failed = [] then "clean" else "incomplete")) ]
    ~help:"Anti-entropy sweeps by outcome";
  { checked = List.length digests; repaired = !repaired; failed = List.rev !failed }

let backend t =
  {
    Backend.name = "replicated:" ^ t.self;
    put = (fun ~digest content -> put t ~digest content);
    get = (fun ~digest -> get t ~digest);
    mem = (fun ~digest -> mem t ~digest);
    delete = (fun ~digest -> delete t ~digest);
    list = (fun () -> list t);
    total_bytes = (fun () -> total_bytes t);
    quarantine = (fun ~digest -> quarantine t ~digest);
    ping = (fun () -> Ok ());
  }
