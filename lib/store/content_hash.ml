(* FNV-1a in two independent 64-bit lanes (different offset bases),
   which in practice behaves like a 128-bit hash for dedup purposes. *)

let fnv_prime = 0x100000001b3L

let lane offset s =
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let hex content =
  let a = lane 0xcbf29ce484222325L content in
  let b = lane 0x9ae16a3b2f90404fL content in
  Printf.sprintf "%016Lx%016Lx" a b

let is_valid s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s
