(* FNV-1a in two independent 64-bit lanes (different offset bases),
   which in practice behaves like a 128-bit hash for dedup purposes.

   The fold is byte-at-a-time, so it also runs incrementally: the
   streamed blob reader feeds chunks through [feed] and checks the
   digest with [finish] before releasing the final chunk. The two
   formulations agree by construction — [hex] is [finish (feed (init
   ()) s)]. *)

let fnv_prime = 0x100000001b3L

let offset_a = 0xcbf29ce484222325L

let offset_b = 0x9ae16a3b2f90404fL

type state = { mutable lane_a : int64; mutable lane_b : int64 }

let init () = { lane_a = offset_a; lane_b = offset_b }

let feed_sub st s off len =
  let a = ref st.lane_a and b = ref st.lane_b in
  for i = off to off + len - 1 do
    let byte = Int64.of_int (Char.code (String.get s i)) in
    a := Int64.mul (Int64.logxor !a byte) fnv_prime;
    b := Int64.mul (Int64.logxor !b byte) fnv_prime
  done;
  st.lane_a <- !a;
  st.lane_b <- !b

let feed st s = feed_sub st s 0 (String.length s)

let finish st = Printf.sprintf "%016Lx%016Lx" st.lane_a st.lane_b

let hex content =
  let st = init () in
  feed st content;
  finish st

let is_valid s =
  String.length s = 32
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s
