(** Pluggable blob storage behind {!Object_store}.

    A backend is a record of closures moving {e logical} blob content
    keyed by digest — it neither computes nor verifies digests (that
    stays in {!Object_store} and {!Replicated}, the layers that own
    integrity), and callers must pass digests that already passed
    {!Content_hash.is_valid}. Three families exist:

    - {!fs} — the original on-disk layout (two-character fan-out,
      'R'/'C' framing, atomic fsynced writes through
      [Fsutil.write_file_atomic], fault site ["object_store.write"]);
    - {!memory} — a hashtable holding identically framed bytes,
      consulting the same fault site, so equivalence tests can replay
      one op sequence against both under identical injected failures;
    - [Client.backend] — a remote peer's store over HTTP [/blob]
      routes (defined in {!Client} to keep the dependency direction:
      backend knows nothing about the network).

    {!Replicated.backend} composes several of these into a quorum view
    with the same interface, which is how the rest of the system stays
    oblivious to whether it runs single-node or clustered. *)

type t = {
  name : string;  (** stable label for logs, metrics and ring debug *)
  put : digest:string -> string -> (unit, string) result;
      (** store logical [content] under [digest]; idempotent — a
          backend already holding the digest returns [Ok] without
          rewriting *)
  get : digest:string -> (string, string) result;
      (** logical content, or [Error] when absent/unreadable *)
  mem : digest:string -> bool;
  delete : digest:string -> unit;  (** best-effort; absent is fine *)
  list : unit -> (string * int) list;
      (** all [(digest, physical_size)] pairs, quarantine excluded *)
  total_bytes : unit -> int;  (** physical bytes after framing *)
  quarantine : digest:string -> (string, string) result;
      (** move a blob out of the addressable namespace; returns a
          human-readable destination *)
  ping : unit -> (unit, string) result;
      (** cheap liveness probe, used by the failure detector *)
}

val fs : dir:string -> (t, string) result
(** Filesystem backend rooted at [dir] (created if missing). *)

val fs_path : dir:string -> string -> string
(** The on-disk path a digest maps to under {!fs}'s layout (pure;
    for tooling and tests). *)

val memory : unit -> t
(** Fresh private in-memory backend. *)

val frame : string -> string
(** Physical framing applied by {!fs} and {!memory} ('R' raw or 'C'
    LZ77-compressed, whichever is smaller). Exposed for tests that
    assert on physical sizes. *)

val unframe : string -> (string, string) result
