(** Minimal HTTP/1.1 framing for the prototype's client–server mode.

    The paper's prototype serves version operations "in a client-server
    model over HTTP" (§5); this module supplies just enough of the
    protocol for that: request parsing with Content-Length bodies,
    response writing, and percent-decoding for query strings. It is
    deliberately not a general web server — one request per
    connection, no chunked encoding, no TLS. *)

type request = {
  meth : string;  (** "GET", "POST", … (upper-cased) *)
  path : string;  (** decoded path without the query string *)
  query : (string * string) list;  (** decoded query parameters *)
  headers : (string * string) list;  (** lower-cased names *)
  body : string;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
      (** extra response headers (e.g. the echoed
          [X-Dsvc-Request-Id]); values are CR/LF-sanitized on write *)
  body : string;
}

val ok : ?content_type:string -> ?headers:(string * string) list -> string -> response
(** 200 with [text/plain] and no extra headers by default. *)

val error : int -> string -> response

val read_request :
  ?max_body:int -> in_channel -> (request, string) result
(** Parse one request. [max_body] (default 64 MiB) bounds
    Content-Length. *)

val write_response : out_channel -> response -> unit

val percent_decode : string -> string
(** Decode [%XX] escapes and [+] as space. Malformed escapes pass
    through verbatim. *)

val status_text : int -> string
