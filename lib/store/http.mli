(** HTTP/1.1 framing for the store's client–server mode.

    The paper's prototype serves version operations "in a client-server
    model over HTTP" (§5); this module supplies the protocol layer for
    that: request parsing (blocking-channel and incremental), response
    serialization with streamed bodies, and percent-decoding. Requests
    and responses are always Content-Length framed — no chunked
    encoding, no TLS. The event-driven connection handling lives in
    {!Server}; see DESIGN.md §13. *)

type request = {
  meth : string;  (** "GET", "POST", … (upper-cased) *)
  path : string;  (** decoded path without the query string *)
  query : (string * string) list;  (** decoded query parameters *)
  headers : (string * string) list;  (** lower-cased names *)
  body : string;
  version : string;  (** "HTTP/1.1" etc., as sent *)
}

(** A body produced incrementally: [read_chunk] yields [Some bytes]
    until the stream is exhausted ([None]). [stream_length] is the
    exact total size, known up front, so the response still carries a
    Content-Length. An [Error] mid-stream means the connection must be
    cut short (the status line is already on the wire). *)
type body_stream = {
  stream_length : int;
  read_chunk : unit -> (string option, string) result;
  close_stream : unit -> unit;
}

type response = {
  status : int;
  content_type : string;
  headers : (string * string) list;
      (** extra response headers (e.g. the echoed
          [X-Dsvc-Request-Id]); values are CR/LF-sanitized on write *)
  body : string;  (** in-memory body; empty when [stream] is set *)
  stream : body_stream option;
}

val ok : ?content_type:string -> ?headers:(string * string) list -> string -> response
(** 200 with [text/plain] and no extra headers by default. *)

val ok_stream : ?content_type:string -> body_stream -> response
(** 200 whose body is streamed ([application/octet-stream] default). *)

val error : int -> string -> response

val body_length : response -> int
(** Exact body size, streamed or not. *)

val response_body : response -> (string, string) result
(** Materialize the body; drains (and closes) a streamed body, so a
    stream can be read at most once. *)

val read_request :
  ?max_body:int -> in_channel -> (request, string) result
(** Parse one request from a blocking channel. [max_body] (default
    64 MiB) bounds Content-Length. Requests with duplicate or
    conflicting Content-Length headers are rejected. *)

val write_response : out_channel -> response -> unit
(** One-shot blocking write, always [Connection: close]. Consults the
    ["http.write_response"] fault site. The event-driven server uses
    {!serialize_header} + vectored writes instead. *)

val serialize_header : ?keep_alive:bool -> response -> string
(** Status line + headers + CRLFCRLF; Content-Length comes from
    {!body_length}, Connection from [keep_alive] (default close). *)

val keep_alive : request -> bool
(** Whether the connection persists after this request: HTTP/1.1
    defaults to yes unless [Connection: close]; HTTP/1.0 to no unless
    [Connection: keep-alive]. *)

val percent_decode : string -> string
(** Decode [%XX] escapes. ["+"] is preserved — in a request path a
    plus is a plus. Malformed escapes pass through verbatim. *)

val percent_decode_query : string -> string
(** Query-string decoding: [%XX] escapes and ["+"] as space
    (application/x-www-form-urlencoded). *)

val parse_query : string -> (string * string) list

val status_text : int -> string

(** Incremental request parser — the per-connection state machine of
    the event loop. Feed raw bytes as they arrive; pull complete
    requests out. Bounded: the header block by [max_header_bytes]
    (reject 413), the body by [max_body_bytes] (413), ambiguous
    framing by rejection (400). Rejections are sticky — after one,
    the connection is beyond saving (close after the error
    response). Leftover bytes after a request are the start of the
    next, which is exactly pipelining. *)
module Parser : sig
  type limits = { max_header_bytes : int; max_body_bytes : int }

  val default_limits : limits
  (** 16 KiB headers, 64 MiB body. *)

  type reject = { reject_status : int; reject_reason : string }

  type t

  val create : ?limits:limits -> unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** [feed t buf off len] appends bytes; the buffer is copied. *)

  val feed_string : t -> string -> unit

  val next : t -> [ `Request of request | `Partial | `Reject of reject ]
  (** Pull the next complete request. Call repeatedly until
      [`Partial] — several pipelined requests may be buffered. *)

  val in_request : t -> bool
  (** Holding bytes of an unfinished request? Decides whether a read
      timeout is a 408 or a silent idle close. *)

  val buffered : t -> int
  (** Bytes currently buffered (diagnostics/backpressure). *)
end
