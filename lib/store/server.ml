let src = Logs.Src.create "dsvc.server" ~doc:"dsvc HTTP server"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Context = Versioning_obs.Context
module Flight = Versioning_obs.Flight
module Timeseries = Versioning_obs.Timeseries
module Alerts = Versioning_obs.Alerts
module Sampler = Versioning_obs.Sampler
module Fsutil = Versioning_util.Fsutil
module Build_info = Versioning_util.Build_info

let parse_strategy s =
  match String.split_on_char '=' s with
  | [ "min-storage" ] -> Ok Repo.Min_storage
  | [ "min-recreation" ] -> Ok Repo.Min_recreation
  | [ "balanced"; f ] | [ "budgeted-sum"; f ] -> (
      match float_of_string_opt f with
      | Some f when f >= 1.0 -> Ok (Repo.Budgeted_sum f)
      | _ -> Error "balanced=FACTOR needs FACTOR >= 1")
  | [ "bounded-max"; f ] -> (
      match float_of_string_opt f with
      | Some f when f >= 1.0 -> Ok (Repo.Bounded_max f)
      | _ -> Error "bounded-max=FACTOR needs FACTOR >= 1")
  | [ "git" ] -> Ok (Repo.Git_window (10, 50))
  | [ "svn" ] -> Ok Repo.Svn_skip
  | _ ->
      Error
        "expected min-storage | min-recreation | balanced=F | bounded-max=F \
         | git | svn"

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* Stable route template per request, so metric label cardinality is
   bounded no matter what paths clients send. *)
let route_label meth path =
  match (meth, segments path) with
  | "GET", [ "versions" ] -> "/versions"
  | "GET", [ "checkout"; _ ] -> "/checkout/:name"
  | "POST", [ "commit" ] -> "/commit"
  | "GET", [ "stats" ] -> "/stats"
  | "GET", [ "branches" ] -> "/branches"
  | "POST", [ "branch"; _ ] -> "/branch/:name"
  | "POST", [ "switch"; _ ] -> "/switch/:name"
  | "GET", [ "tags" ] -> "/tags"
  | "POST", [ "tag"; _ ] -> "/tag/:name"
  | "GET", [ "diff"; _; _ ] -> "/diff/:a/:b"
  | "POST", [ "optimize" ] -> "/optimize"
  | "GET", [ "verify" ] -> "/verify"
  | "GET", [ "metrics" ] -> "/metrics"
  | "GET", [ "metrics"; "cluster" ] -> "/metrics/cluster"
  | "GET", [ "timeseries" ] -> "/timeseries"
  | "GET", [ "alerts" ] -> "/alerts"
  | "GET", [ "trace"; _ ] -> "/trace/:request_id"
  | "GET", [ "flight" ] -> "/flight"
  | "GET", [ "health" ] -> "/health"
  | "GET", [ "blob"; _ ] -> "/blob/:digest"
  | "GET", [ "blob"; _; "stat" ] -> "/blob/:digest/stat"
  | "POST", [ "blob"; _ ] -> "/blob/:digest"
  | "POST", [ "blob"; _; "quarantine" ] -> "/blob/:digest/quarantine"
  | "DELETE", [ "blob"; _ ] -> "/blob/:digest"
  | "GET", [ "blobs" ] -> "/blobs"
  | "GET", [ "meta" ] -> "/meta"
  | "POST", [ "meta"; "sync" ] -> "/meta/sync"
  | "POST", [ "anti-entropy" ] -> "/anti-entropy"
  | _, _ -> "other"

let stats_body (s : Repo.stats) =
  Printf.sprintf
    "versions %d\nstorage_bytes %d\nmaterialized %d\ndelta_stored %d\n\
     max_chain %d\nsum_recreation %.0f\nmax_recreation %.0f\n"
    s.Repo.n_versions s.Repo.storage_bytes s.Repo.n_full s.Repo.n_delta
    s.Repo.max_chain s.Repo.sum_recreation_bytes s.Repo.max_recreation_bytes

(* Map a domain error to the right status: resolution failures are the
   client naming something that does not exist (404); everything else
   (duplicate branch, bad parent, storage failure surfaced as Error)
   is a conflict with repository state (409). *)
let status_of_error e =
  let contains needle =
    let nl = String.length needle and el = String.length e in
    let rec go i = i + nl <= el && (String.sub e i nl = needle || go (i + 1)) in
    go 0
  in
  if
    contains "cannot resolve" || contains "not found"
    || contains "is not stored" || contains "no branch named"
    || contains "unknown version" || contains "unknown parent version"
  then 404
  else 409

(* ---- recent-request table for GET /trace/:request_id ----

   A small bounded ring of per-request summaries (request id, route,
   status, latency, and the span aggregate of that request's trace),
   written by [handle_safe] after every request so a debug client can
   ask "what did request X spend its time on" shortly after the
   fact. *)

type recent_request = {
  r_request : string;
  r_trace : string;
  r_route : string;
  r_status : int;
  r_dur : float;
  r_spans : Trace.agg list;
}

let recent_capacity = 64

let recent_mutex = Mutex.create ()

(* lint: mutable-ok bounded ring of recent request summaries; writes
   take [recent_mutex], read only by the /trace debug endpoint *)
let recent_ring : recent_request option array = Array.make recent_capacity None

(* lint: mutable-ok ring cursor, same mutex *)
let recent_cursor = ref 0

let with_recent_lock f =
  Mutex.lock recent_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock recent_mutex) f

let remember_request r =
  with_recent_lock (fun () ->
      recent_ring.(!recent_cursor) <- Some r;
      recent_cursor := (!recent_cursor + 1) mod recent_capacity)

let find_recent_request rid =
  with_recent_lock (fun () ->
      (* newest first: walk backwards from the cursor *)
      let rec go i n =
        if n >= recent_capacity then None
        else
          let idx = (i + recent_capacity) mod recent_capacity in
          match recent_ring.(idx) with
          | Some r when r.r_request = rid -> Some r
          | _ -> go (idx - 1) (n + 1)
      in
      go (!recent_cursor - 1) 0)

let recent_request_body r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"request_id":"%s","trace_id":"%s","route":"%s","status":%d,"duration_s":%.6f,"spans":[|}
       (Metrics.json_escape r.r_request)
       (Metrics.json_escape r.r_trace)
       (Metrics.json_escape r.r_route)
       r.r_status r.r_dur);
  List.iteri
    (fun i (a : Trace.agg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"name":"%s","count":%d,"total_s":%.6f}|}
           (Metrics.json_escape a.Trace.agg_name)
           a.Trace.count a.Trace.total_s))
    r.r_spans;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Cluster wiring, when serving with [--peers]: the node's own shard
   ([local_store] — what the [/blob] peer routes serve, so replication
   never recurses through the quorum), the replicated view the repo
   reads and writes through, and typed clients to each peer for
   metadata pushes. *)
type cluster = {
  local_store : Object_store.t;
  replicated : Replicated.t;
  peer_clients : (string * Client.t) list;
}

(* Routes whose success changes repository metadata — each one is
   followed by a generation-stamped push to the usable peers. *)
let mutating_route = function
  | "/commit" | "/branch/:name" | "/switch/:name" | "/tag/:name"
  | "/optimize" ->
      true
  | _ -> false

(* Routes served without the repo lock when [workers > 1]: pure
   observability reads with their own internal synchronization.
   /metrics/cluster belongs here because its peer fan-out can stall on
   a dead peer for the full client timeout — which is why it reads
   only the (mutex-guarded) metrics registry, never the repo: the
   telemetry gauges it serves are refreshed by [handle_safe] under the
   repo lock after each repo-touching request. *)
let lock_free_route = function
  | "/metrics" | "/metrics/cluster" | "/flight" | "/trace/:request_id"
  | "/timeseries" | "/alerts" ->
      true
  | _ -> false

let push_meta_to_peers cluster repo =
  match Repo.export_meta repo with
  | Error e -> Log.warn (fun m -> m "meta push skipped: %s" e)
  | Ok meta ->
      List.iter
        (fun (name, client) ->
          if Replicated.usable cluster.replicated name then
            match Client.push_meta client meta with
            | Ok _ -> ()
            | Error e ->
                (* The peer will converge at its next anti-entropy;
                   blob traffic keeps the failure detector informed. *)
                Log.warn (fun m -> m "meta push to %s failed: %s" name e))
        cluster.peer_clients

let health_body ?cluster repo =
  let b = Buffer.create 256 in
  let store =
    match cluster with
    | Some c -> c.local_store
    | None -> Repo.object_store repo
  in
  (match (Object_store.backend store).Backend.ping () with
  | Ok () -> Buffer.add_string b "status ok\nstore ok\n"
  | Error e -> Buffer.add_string b (Printf.sprintf "status degraded\nstore %s\n" e));
  Buffer.add_string b
    (Printf.sprintf "journal %s\n"
       (if Repo.journal_pending repo then "pending" else "clean"));
  Buffer.add_string b (Printf.sprintf "generation %d\n" (Repo.generation repo));
  (* Build/process provenance — the same stamps dsvc metrics --json and
     the bench record carry, so all three are diffable. *)
  Buffer.add_string b (Printf.sprintf "build %s\n" (Build_info.git_rev ()));
  Buffer.add_string b (Printf.sprintf "ocaml %s\n" Build_info.ocaml_version);
  Buffer.add_string b (Printf.sprintf "uptime_s %.0f\n" (Build_info.uptime ()));
  (match cluster with
  | None -> ()
  | Some c ->
      let r = c.replicated in
      Buffer.add_string b (Printf.sprintf "self %s\n" (Replicated.self r));
      Buffer.add_string b
        (Printf.sprintf "ring_epoch %s\n" (Replicated.ring_epoch r));
      Buffer.add_string b
        (Printf.sprintf "replicas %d\n" (Replicated.replicas r));
      Buffer.add_string b
        (Printf.sprintf "hints %d\n" (Replicated.pending_hints r));
      List.iter
        (fun (name, state, err) ->
          Buffer.add_string b
            (Printf.sprintf "peer %s %s%s\n" name
               (match state with
               | `Up -> "up"
               | `Down -> "down"
               | `Probe -> "probe")
               (if err = "" then "" else " " ^ err)))
        (Replicated.peers r));
  Buffer.contents b

(* Re-label one node's Prometheus exposition for the cluster-wide
   scrape: drop the # HELP/# TYPE comment lines (the same family
   repeats across peers, and its comments may appear at most once in
   one exposition) and tag every sample with peer="<name>" as its
   first label. *)
let relabel_prometheus ~peer body =
  let b = Buffer.create (String.length body + 256) in
  (* Prometheus quoting, not OCaml %S: a peer name with a backslash,
     quote, or newline must escape per the exposition spec (%S would
     emit decimal escapes like \255 that scrapers reject). *)
  let tag = Printf.sprintf "peer=\"%s\"" (Metrics.escape_label peer) in
  List.iter
    (fun line ->
      if line = "" || line.[0] = '#' then ()
      else begin
        (match (String.index_opt line '{', String.index_opt line ' ') with
        | Some i, Some j when i < j ->
            (* name{a="b"} v  ->  name{peer="p",a="b"} v *)
            Buffer.add_string b (String.sub line 0 (i + 1));
            Buffer.add_string b tag;
            if i + 1 < String.length line && line.[i + 1] <> '}' then
              Buffer.add_char b ',';
            Buffer.add_string b
              (String.sub line (i + 1) (String.length line - i - 1))
        | _, Some j ->
            (* name v  ->  name{peer="p"} v *)
            Buffer.add_string b (String.sub line 0 j);
            Buffer.add_char b '{';
            Buffer.add_string b tag;
            Buffer.add_char b '}';
            Buffer.add_string b (String.sub line j (String.length line - j))
        | _, None -> Buffer.add_string b line);
        Buffer.add_char b '\n'
      end)
    (String.split_on_char '\n' body);
  Buffer.contents b

(* ---- alert engine (DESIGN.md §16) ----

   One process-global rule engine over the repo's time-series,
   evaluated by the sampler tick. Built lazily so a server that never
   arms the sampler (Obs forced off) pays nothing; GET /alerts still
   answers with every rule Inactive. DSVC_ALERT_SUPPRESS is a
   comma-separated list of rule names to annotate as suppressed —
   they keep evaluating and reporting, but a dashboard can drop
   them. *)
let alerts_engine =
  lazy
    (let t = Alerts.create ~rules:(Alerts.default_rules ()) in
     (match Sys.getenv_opt "DSVC_ALERT_SUPPRESS" with
     | None -> ()
     | Some spec ->
         List.iter
           (fun name ->
             let name = String.trim name in
             if name <> "" then
               Alerts.suppress t ~name ~reason:"DSVC_ALERT_SUPPRESS")
           (String.split_on_char ',' spec));
     t)

(* GET /timeseries body: without [metric], the sorted series names;
   with one, `time count avg min max last` lines for the finest tier
   covering [since] seconds back (default: the fine tier's whole
   retention). *)
let timeseries_body ts ~metric ~since ~now =
  match metric with
  | None -> (
      match Timeseries.metrics ts with
      | [] -> ""
      | names -> String.concat "\n" names ^ "\n")
  | Some metric ->
      let since = Option.map (fun s -> now -. s) since in
      let samples = Timeseries.query ts ~metric ?since ~now () in
      let b = Buffer.create 1024 in
      List.iter
        (fun (s : Timeseries.sample) ->
          Buffer.add_string b
            (Printf.sprintf "%.3f %d %.6g %.6g %.6g %.6g\n" s.Timeseries.s_time
               s.Timeseries.s_count s.Timeseries.s_avg s.Timeseries.s_min
               s.Timeseries.s_max s.Timeseries.s_last))
        samples;
      Buffer.contents b

(* The JSON metrics document with a build/process meta block spliced
   in front of [Metrics.to_json]'s {"metrics":[...]} — shared with
   `dsvc metrics --json`, and shaped like the BENCH_2.json meta stamps
   so the two are diffable. *)
let metrics_json_with_meta () =
  let base = Metrics.to_json () in
  let tail = String.sub base 1 (String.length base - 1) in
  Printf.sprintf {|{"meta":{"git_rev":"%s","ocaml":"%s","uptime_s":%.3f},%s|}
    (Metrics.json_escape (Build_info.git_rev ()))
    (Metrics.json_escape Build_info.ocaml_version)
    (Build_info.uptime ()) tail

let handle ?cluster repo (req : Http.request) =
  let local_store =
    match cluster with
    | Some c -> c.local_store
    | None -> Repo.object_store repo
  in
  let valid_digest d k =
    if Content_hash.is_valid d then k ()
    else Http.error 400 (Printf.sprintf "invalid digest %S\n" d)
  in
  let resolve name =
    match Repo.resolve repo name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "cannot resolve %S" name)
  in
  let of_result ?(created = false) = function
    | Ok body ->
        if created then
          {
            Http.status = 201;
            content_type = "text/plain; charset=utf-8";
            headers = [];
            body;
            stream = None;
          }
        else Http.ok body
    | Error e -> Http.error (status_of_error e) (e ^ "\n")
  in
  match (req.Http.meth, segments req.Http.path) with
  | "GET", [ "versions" ] ->
      let lines =
        Repo.log repo
        |> List.map (fun (c : Repo.commit_info) ->
               Printf.sprintf "%d %s %s" c.id
                 (match c.parents with
                 | [] -> "-"
                 | ps -> String.concat "," (List.map string_of_int ps))
                 c.message)
      in
      Http.ok (String.concat "\n" lines ^ "\n")
  | "GET", [ "checkout"; name ] -> (
      match Result.bind (resolve name) (Repo.checkout repo) with
      | Ok content -> Http.ok ~content_type:"application/octet-stream" content
      | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "commit" ] -> (
      let message =
        Option.value (List.assoc_opt "message" req.Http.query) ~default:""
      in
      let parents =
        match List.assoc_opt "parents" req.Http.query with
        | None | Some "" -> Ok None
        | Some ps -> (
            let ids = String.split_on_char ',' ps |> List.map int_of_string_opt in
            if List.for_all Option.is_some ids then
              Ok (Some (List.map Option.get ids))
            else Error "bad parents list")
      in
      match parents with
      | Error e -> Http.error 400 (e ^ "\n")
      | Ok parents ->
          of_result ~created:true
            (Result.map string_of_int
               (Repo.commit repo ~message ?parents req.Http.body)))
  | "GET", [ "stats" ] ->
      (* Stats already walks every stored object; refreshing the drift
         score here (same walk) is where the telemetry drift gauge
         gets its value — the per-request gauge refresh in
         [handle_safe] is memory-only. *)
      if Obs.enabled () then ignore (Repo.drift_score repo);
      Http.ok (stats_body (Repo.stats repo))
  | "GET", [ "branches" ] ->
      Http.ok
        (String.concat "\n"
           (List.map
              (fun (n, v) ->
                Printf.sprintf "%s%s %d"
                  (if n = Repo.current_branch repo then "*" else "")
                  n v)
              (Repo.branches repo))
        ^ "\n")
  | "POST", [ "branch"; name ] ->
      let at =
        Option.bind (List.assoc_opt "at" req.Http.query) int_of_string_opt
      in
      of_result
        (Result.map (fun () -> "ok\n") (Repo.create_branch repo name ?at ()))
  | "POST", [ "switch"; name ] ->
      of_result (Result.map (fun () -> "ok\n") (Repo.switch repo name))
  | "GET", [ "tags" ] ->
      Http.ok
        (String.concat "\n"
           (List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) (Repo.tags repo))
        ^ "\n")
  | "POST", [ "tag"; name ] ->
      let at =
        Option.bind (List.assoc_opt "at" req.Http.query) int_of_string_opt
      in
      of_result (Result.map (fun () -> "ok\n") (Repo.tag repo name ?at ()))
  | "GET", [ "diff"; a; b ] -> (
      match
        Result.bind (resolve a) (fun va ->
            Result.bind (resolve b) (fun vb -> Repo.diff repo va vb))
      with
      | Ok d -> Http.ok d
      | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "optimize" ] -> (
      match List.assoc_opt "strategy" req.Http.query with
      | None -> Http.error 400 "missing strategy parameter\n"
      | Some s -> (
          match parse_strategy s with
          | Error e -> Http.error 400 (e ^ "\n")
          | Ok strategy ->
              of_result
                (Result.map stats_body (Repo.optimize repo strategy))))
  | "GET", [ "verify" ] -> (
      match Repo.verify repo with
      | Ok () -> Http.ok "consistent\n"
      | Error problems ->
          Http.error 500 (String.concat "\n" problems ^ "\n"))
  | "GET", [ "metrics" ] -> (
      match List.assoc_opt "format" req.Http.query with
      | Some "json" ->
          {
            Http.status = 200;
            content_type = "application/json";
            headers = [];
            body = metrics_json_with_meta ();
            stream = None;
          }
      | _ ->
          {
            Http.status = 200;
            content_type = "text/plain; version=0.0.4; charset=utf-8";
            headers = [];
            body = Metrics.to_prometheus ();
            stream = None;
          })
  | "GET", [ "metrics"; "cluster" ] ->
      (* Cluster-wide scrape: this node's registry plus a live fan-out
         to every peer's GET /metrics, each sample tagged with its
         origin peer. A peer that cannot be reached contributes a
         dsvc_cluster_scrape_up 0 gauge and an annotation line rather
         than failing the whole scrape — partial results beat none. *)
      let self_name =
        match cluster with
        | Some c -> Replicated.self c.replicated
        | None -> "self"
      in
      let b = Buffer.create 8192 in
      Buffer.add_string b
        "# Cluster-wide scrape: every sample carries a peer label naming \
         its origin node.\n";
      let add_up peer ok =
        Buffer.add_string b
          (Printf.sprintf "dsvc_cluster_scrape_up{peer=\"%s\"} %d\n"
             (Metrics.escape_label peer)
             (if ok then 1 else 0))
      in
      Buffer.add_string b
        (relabel_prometheus ~peer:self_name (Metrics.to_prometheus ()));
      add_up self_name true;
      (match cluster with
      | None -> ()
      | Some c ->
          (* annotation comments must stay one line each — a newline
             anywhere in the peer name or the error would inject a
             non-comment line and corrupt the scrape *)
          let one_line s =
            String.map (fun ch -> if ch = '\n' then ' ' else ch) s
          in
          List.iter
            (fun (name, client) ->
              match Client.request client ~meth:"GET" ~path:"/metrics" () with
              | Ok (200, body) ->
                  Buffer.add_string b (relabel_prometheus ~peer:name body);
                  add_up name true
              | Ok (status, _) ->
                  Buffer.add_string b
                    (Printf.sprintf "# peer %s unreachable: HTTP %d\n"
                       (one_line name) status);
                  add_up name false
              | Error e ->
                  Buffer.add_string b
                    (Printf.sprintf "# peer %s unreachable: %s\n"
                       (one_line name) (one_line e));
                  add_up name false)
            c.peer_clients);
      {
        Http.status = 200;
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        headers = [];
        body = Buffer.contents b;
        stream = None;
      }
  | "GET", [ "timeseries" ] ->
      (* The repo's sampled metric history. Lock-free: the ring has
         its own mutex and the handle's field is only replaced at
         open. An un-sampled server answers with an empty body. *)
      let metric = List.assoc_opt "metric" req.Http.query in
      let since =
        Option.bind (List.assoc_opt "since" req.Http.query) float_of_string_opt
      in
      Http.ok
        (timeseries_body (Repo.timeseries repo) ~metric ~since
           ~now:(Unix.gettimeofday ()))
  | "GET", [ "alerts" ] ->
      (* One line per rule: name, state, since, value, suppression. *)
      Http.ok (Alerts.render (Lazy.force alerts_engine))
  | "GET", [ "trace"; rid ] -> (
      (* Debug endpoint: the span summary of a recent request. Only
         requests still in the bounded ring are answerable. *)
      match find_recent_request rid with
      | Some r ->
          Http.ok ~content_type:"application/json" (recent_request_body r)
      | None ->
          Http.error 404
            (Printf.sprintf "no recent request %S (ring keeps the last %d)\n"
               rid recent_capacity))
  | "GET", [ "flight" ] ->
      (* The always-on flight recorder, for `dsvc flight-dump`. *)
      Http.ok ~content_type:"application/json" (Flight.to_json ())
  | "GET", [ "health" ] -> Http.ok (health_body ?cluster repo)
  (* ---- peer blob routes: always the node's LOCAL shard ---- *)
  | "GET", [ "blob"; digest ] ->
      (* Streamed: raw-framed blobs go from disk to the socket in
         fixed-size chunks without ever being materialized whole. *)
      valid_digest digest @@ fun () -> (
        match Object_store.get_stream local_store digest with
        | Ok s ->
            Http.ok_stream
              {
                Http.stream_length = s.Object_store.bs_length;
                read_chunk = s.Object_store.bs_read;
                close_stream = s.Object_store.bs_close;
              }
        | Error e -> Http.error 404 (e ^ "\n"))
  | "GET", [ "blob"; digest; "stat" ] ->
      valid_digest digest @@ fun () -> (
        match Object_store.get local_store digest with
        | Ok content ->
            Http.ok (Printf.sprintf "present %d\n" (String.length content))
        | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "blob"; digest ] ->
      valid_digest digest @@ fun () ->
      if Content_hash.hex req.Http.body <> digest then
        Http.error 409 "content does not match digest\n"
      else (
        match Object_store.put local_store req.Http.body with
        | Ok _ ->
            {
              Http.status = 201;
              content_type = "text/plain; charset=utf-8";
              headers = [];
              body = "stored\n";
              stream = None;
            }
        | Error e -> Http.error 409 (e ^ "\n"))
  | "POST", [ "blob"; digest; "quarantine" ] ->
      valid_digest digest @@ fun () -> (
        match Object_store.quarantine local_store digest with
        | Ok dst -> Http.ok (dst ^ "\n")
        | Error e -> Http.error 404 (e ^ "\n"))
  | "DELETE", [ "blob"; digest ] ->
      valid_digest digest @@ fun () ->
      Object_store.delete local_store digest;
      Http.ok "deleted\n"
  | "GET", [ "blobs" ] ->
      let lines =
        (Object_store.backend local_store).Backend.list ()
        |> List.map (fun (d, size) -> Printf.sprintf "%s %d" d size)
      in
      Http.ok (String.concat "\n" lines ^ "\n")
  (* ---- metadata replication ---- *)
  | "GET", [ "meta" ] -> (
      match Repo.export_meta repo with
      | Ok meta -> Http.ok meta
      | Error e -> Http.error 500 (e ^ "\n"))
  | "POST", [ "meta"; "sync" ] -> (
      match Repo.adopt_meta repo req.Http.body with
      | Ok true -> Http.ok "adopted\n"
      | Ok false -> Http.ok "stale\n"
      | Error e -> Http.error 409 (e ^ "\n"))
  | "POST", [ "anti-entropy" ] -> (
      match cluster with
      | None -> Http.error 409 "not serving in cluster mode\n"
      | Some c ->
          (* Bring rejoined peers current: probe first (a restarted
             node must not wait out its probation), then metadata (so
             their reference set is ours), then blob replication. *)
          Replicated.probe c.replicated;
          push_meta_to_peers c repo;
          let report =
            Replicated.anti_entropy c.replicated
              ~digests:(Repo.referenced_digests repo)
          in
          let b = Buffer.create 128 in
          Buffer.add_string b
            (Printf.sprintf "checked %d\nrepaired %d\nfailed %d\n"
               report.Replicated.checked report.Replicated.repaired
               (List.length report.Replicated.failed));
          List.iter
            (fun f -> Buffer.add_string b (Printf.sprintf "failure %s\n" f))
            report.Replicated.failed;
          if report.Replicated.failed = [] then Http.ok (Buffer.contents b)
          else Http.error 500 (Buffer.contents b))
  | ("GET" | "POST" | "DELETE"), _ -> Http.error 404 "no such route\n"
  | _, _ -> Http.error 405 "method not allowed\n"

(* Recover the client's trace context from the request headers: the
   trace id and parent span from [traceparent], the request id from
   [X-Dsvc-Request-Id] (sanitized — it ends up in log lines). A
   request with neither gets a fresh server-side context, so every
   access-log line has a request id either way. *)
let context_of_request (req : Http.request) =
  let base =
    match
      Option.bind
        (List.assoc_opt "traceparent" req.Http.headers)
        Context.of_traceparent
    with
    | Some ctx -> ctx
    | None -> Context.make ()
  in
  match
    Option.bind
      (List.assoc_opt "x-dsvc-request-id" req.Http.headers)
      Context.sanitize_id
  with
  | Some rid -> { base with Context.request_id = rid }
  | None -> base

(* A raising handler must cost the client a 500, not the server its
   life (and not the client a silently dropped connection).

   This wrapper is also where a request joins its client's trace: the
   extracted context becomes ambient (stamping spans and log lines),
   the [server.request] span attaches under the client's span, the
   access log records route/status/latency/request id, and the
   request's span summary lands in the recent-request ring for
   GET /trace/:request_id. The wall-clock read here is a server-tier
   operational measurement, not an Obs-gated one — it feeds the access
   log, never a planning decision (DESIGN.md §11). *)
let handle_safe ?cluster repo req =
  let ctx = context_of_request req in
  Context.with_context ctx @@ fun () ->
  let run () =
    try handle ?cluster repo req
    with e -> Http.error 500 ("internal error: " ^ Printexc.to_string e ^ "\n")
  in
  let route = route_label req.Http.meth req.Http.path in
  let t0 = Unix.gettimeofday () in
  let resp =
    Trace.with_span ?parent:ctx.Context.parent_span "server.request" run
  in
  let dur = Unix.gettimeofday () -. t0 in
  (* Refresh the workload-telemetry gauges while this thread still
     holds the repo lock (lock-free routes skip it — they must not
     touch repo state). The refresh is memory-only: the drift value is
     whatever the last explicit [Repo.drift_score] computed (GET
     /stats refreshes it). *)
  if Obs.enabled () && not (lock_free_route route) then
    Repo.export_telemetry repo;
  if Obs.enabled () then begin
    (* Per-route count/latency/status; the route template keeps label
       cardinality bounded. *)
    Metrics.counter "dsvc_server_requests_total"
      ~labels:
        [ ("route", route); ("status", string_of_int resp.Http.status) ]
      ~help:"HTTP requests handled, by route template and status";
    Metrics.observe "dsvc_server_request_seconds"
      ~labels:[ ("route", route) ] dur
      ~help:"HTTP request handling latency, by route template"
  end;
  (* Access log: the reporter (Logctx) stamps request/trace ids from
     the ambient context. *)
  Log.info (fun m ->
      m "%s %s -> %d (%.3fms)" req.Http.meth req.Http.path resp.Http.status
        (dur *. 1000.0));
  let span_summary =
    if Obs.enabled () then
      Trace.summarize_spans
        (List.filter
           (fun (s : Trace.span) -> s.Trace.trace = Some ctx.Context.trace_id)
           (Trace.spans ()))
    else []
  in
  remember_request
    {
      r_request = ctx.Context.request_id;
      r_trace = ctx.Context.trace_id;
      r_route = route;
      r_status = resp.Http.status;
      r_dur = dur;
      r_spans = span_summary;
    };
  (* Successful mutations propagate metadata to the peers while still
     inside the request's trace, so the pushes appear in its spans. *)
  (match cluster with
  | Some c
    when mutating_route route && resp.Http.status >= 200
         && resp.Http.status < 300 ->
      push_meta_to_peers c repo
  | _ -> ());
  (* Echo the request id so clients can quote it back at /trace/:id. *)
  {
    resp with
    Http.headers =
      ("X-Dsvc-Request-Id", ctx.Context.request_id) :: resp.Http.headers;
  }

(* ---- event-driven serving (DESIGN.md §13) ----

   One loop thread owns every socket: it accepts, reads, parses
   incrementally, and writes — never blocking on any of them. Parsed
   requests are handed to a small executor (systhreads; default one,
   because the ambient trace {!Context} is domain-local and shared
   between systhreads) whose responses are posted back to the loop.
   Heavy handlers still parallelize internally: [Repo.optimize] fans
   out across the [Pool] domains, so the loop stays responsive while a
   solve runs. *)

module Evloop = Versioning_util.Evloop
module Faults = Versioning_util.Faults

(* Numeric knobs go through the shared validating parsers: a typo'd
   DSVC_MAX_CONNS or DSVC_IDLE_TIMEOUT complains on stderr instead of
   silently running with the default. *)
let env_float name default = Obs.env_float name ~default
let env_int name default = Obs.env_int name ~default

(* How many complete pipelined requests may queue per connection
   before the loop stops reading from it (backpressure). *)
let max_pipeline = 16

type out_slice = { o_data : string; mutable o_off : int }

type conn = {
  c_fd : Unix.file_descr;
  c_parser : Http.Parser.t;
  c_pending : Http.request Queue.t;  (* parsed, not yet dispatched *)
  c_out : out_slice Queue.t;  (* serialized bytes awaiting the socket *)
  mutable c_stream : Http.body_stream option;  (* body being streamed *)
  mutable c_busy : bool;  (* a handler is running for this conn *)
  mutable c_close_after : bool;  (* close once the out queue drains *)
  mutable c_eof : bool;  (* peer closed its sending half *)
  mutable c_closed : bool;
  mutable c_last_activity : float;
  mutable c_served : int;  (* responses enqueued on this connection *)
}

let record_rejected reason =
  Metrics.counter "dsvc_server_rejected_total"
    ~labels:[ ("reason", reason) ]
    ~help:"Connections/requests refused by the server core, by reason"

let serve ?cluster repo ~port ?(host = "127.0.0.1") ?max_requests
    ?(request_timeout = 30.0) ?idle_timeout ?max_connections ?workers
    ?backend ?on_listen () =
  (* Serving is an operational mode: turn the observability layer on
     so GET /metrics has data, whatever the environment says. *)
  Obs.enable ();
  let idle_timeout =
    match idle_timeout with
    | Some v -> v
    | None -> env_float "DSVC_IDLE_TIMEOUT" 5.0
  in
  let max_connections =
    match max_connections with
    | Some v -> v
    | None -> env_int "DSVC_MAX_CONNS" 1024
  in
  let workers =
    max 1
      (match workers with
      | Some v -> v
      | None -> env_int "DSVC_SERVER_WORKERS" 1)
  in
  try
    let addr = Unix.inet_addr_of_string host in
    let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt lsock Unix.SO_REUSEADDR true;
    Unix.bind lsock (Unix.ADDR_INET (addr, port));
    Unix.listen lsock 128;
    Unix.set_nonblock lsock;
    let actual_port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    Printf.printf "dsvc server listening on %s:%d\n%!" host actual_port;
    (match on_listen with Some f -> f actual_port | None -> ());
    let stop = ref false in
    let old_int = ref None and old_term = ref None in
    (try
       old_int :=
         Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)));
       old_term :=
         Some
           (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)))
     with Invalid_argument _ | Sys_error _ -> ());
    let restore_signals () =
      let restore name signum = function
        | None -> ()
        | Some behaviour -> (
            try Sys.set_signal signum behaviour
            with e ->
              (* Restoration is best effort (the process is exiting),
                 but a failure is still worth a trace. *)
              Log.warn (fun m ->
                  m "could not restore %s handler: %s" name
                    (Printexc.to_string e)))
      in
      restore "SIGINT" Sys.sigint !old_int;
      restore "SIGTERM" Sys.sigterm !old_term
    in
    let loop = Evloop.create ?backend () in
    Log.info (fun m ->
        m "event loop backend: %s, workers: %d" (Evloop.backend_name loop)
          workers);
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 64 in
    let served = ref 0 in
    let stopping = ref false in
    let listener_open = ref true in
    let drain_deadline = ref infinity in
    let rbuf = Bytes.create 65536 in
    (* Executor: parsed requests run here so a slow handler never
       blocks the loop. One worker by default — the ambient trace
       context is domain-local, so concurrent handlers in one domain
       would interleave their contexts (DSVC_SERVER_WORKERS opts in;
       the repo lock below keeps state safe when they do). *)
    let repo_mutex = Mutex.create () in
    let with_repo_lock f =
      Mutex.lock repo_mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock repo_mutex) f
    in
    let jobs : (unit -> unit) Queue.t = Queue.create () in
    let jobs_mutex = Mutex.create () in
    let jobs_cond = Condition.create () in
    let quit = ref false in
    let submit job =
      Mutex.lock jobs_mutex;
      Queue.push job jobs;
      Condition.signal jobs_cond;
      Mutex.unlock jobs_mutex
    in
    let rec worker () =
      Mutex.lock jobs_mutex;
      while Queue.is_empty jobs && not !quit do
        Condition.wait jobs_cond jobs_mutex
      done;
      let job = if Queue.is_empty jobs then None else Some (Queue.pop jobs) in
      Mutex.unlock jobs_mutex;
      match job with
      | None -> ()
      | Some job ->
          (try job ()
           with e ->
             (* lint: swallow-ok a raising job must cost one response,
                never the executor thread; handle_safe already maps
                handler exceptions to 500s, so this is a backstop *)
             Log.err (fun m -> m "executor job raised: %s" (Printexc.to_string e)));
          worker ()
    in
    let threads = List.init workers (fun _ -> Thread.create worker ()) in
    (* ---- cluster health sampler (DESIGN.md §16) ----

       A reactor timer ticks the sampler every DSVC_TS_STEP seconds:
       the tick itself is Locks-only (lint R7 — snapshot the registry,
       fold into the repo's time-series ring, evaluate alerts), while
       everything that can block — peer probing and ring persistence —
       is handed to the executor. DSVC_OBS=0 keeps the timer unarmed
       entirely: no clock reads, no samples, no .dsvc/timeseries. *)
    let sampler_armed = not (Obs.forced_off ()) in
    let up_cell = Atomic.make (None : float option) in
    let sampler =
      Sampler.create
        ~alerts:(Lazy.force alerts_engine)
        ?up_fraction:
          (match cluster with
          | Some _ -> Some (fun () -> Atomic.get up_cell)
          | None -> None)
        ~ts:(Repo.timeseries repo) ()
    in
    (* Executor side: ping every peer (single attempt — the scrape-up
       fraction must see real deadness, not a retried success), read
       reachable peers' ring epochs, refresh hint-queue lag gauges. *)
    let probe_cluster () =
      match cluster with
      | None -> ()
      | Some c ->
          let self_epoch = Replicated.ring_epoch c.replicated in
          let up = ref 1 and total = ref 1 in
          List.iter
            (fun (name, client) ->
              incr total;
              match Client.ping client with
              | Error _ -> ()
              | Ok () ->
                  incr up;
                  let mismatch =
                    match Client.health client with
                    | Ok fields -> (
                        match List.assoc_opt "ring_epoch" fields with
                        | Some e when e = self_epoch -> 0.0
                        | _ -> 1.0)
                    | Error _ -> 1.0
                  in
                  Metrics.gauge "dsvc_cluster_ring_epoch_mismatch"
                    ~labels:[ ("peer", name) ]
                    ~help:"1 when the peer reports a different ring epoch"
                    mismatch)
            c.peer_clients;
          Atomic.set up_cell
            (Some (float_of_int !up /. float_of_int !total));
          Replicated.export_lag_metrics c.replicated
    in
    let tick_count = ref 0 in
    (* The probe gets its own short-lived thread, never the request
       executor: probing a peer waits on that peer's HTTP responses,
       and two nodes probing each other from their (single-worker)
       executors would each be stuck waiting for a worker the other
       cannot free — a distributed stall that starves real requests
       until the socket timeout. At most one probe thread is alive at
       a time; a tick that finds the previous probe still running
       records and evaluates as usual but skips spawning another. *)
    let probe_inflight = Atomic.make false in
    let sampler_tick () =
      Sampler.tick sampler ~now:(Unix.gettimeofday ());
      incr tick_count;
      let flush = !tick_count mod 12 = 0 in
      if Atomic.compare_and_set probe_inflight false true then
        ignore
          (Thread.create
             (fun () ->
               Fun.protect
                 ~finally:(fun () -> Atomic.set probe_inflight false)
                 (fun () ->
                   try
                     probe_cluster ();
                     if flush then
                       match
                         with_repo_lock (fun () -> Repo.flush_timeseries repo)
                       with
                       | Ok () -> ()
                       | Error e ->
                           Log.warn (fun m ->
                               m "timeseries ring not persisted: %s" e)
                   with e ->
                     (* lint: swallow-ok a failed probe costs one
                        sample, never the server *)
                     Log.warn (fun m ->
                         m "cluster probe failed: %s" (Printexc.to_string e))))
             ())
    in
    let conn_drained conn =
      Queue.is_empty conn.c_out
      && conn.c_stream = None && (not conn.c_busy)
      && Queue.is_empty conn.c_pending
      && not (Http.Parser.in_request conn.c_parser)
    in
    let gather conn =
      let slices = ref [] and n = ref 0 in
      (try
         Queue.iter
           (fun sl ->
             if !n >= 8 then raise Exit;
             slices :=
               (sl.o_data, sl.o_off, String.length sl.o_data - sl.o_off)
               :: !slices;
             incr n)
           conn.c_out
       with Exit -> ());
      Array.of_list (List.rev !slices)
    in
    let rec advance conn n =
      if n > 0 then begin
        let sl = Queue.peek conn.c_out in
        let rem = String.length sl.o_data - sl.o_off in
        if n >= rem then begin
          ignore (Queue.pop conn.c_out);
          advance conn (n - rem)
        end
        else sl.o_off <- sl.o_off + n
      end
    in
    let rec close_conn conn =
      if not conn.c_closed then begin
        conn.c_closed <- true;
        (match conn.c_stream with
        | Some s -> s.Http.close_stream ()
        | None -> ());
        conn.c_stream <- None;
        Evloop.remove loop conn.c_fd;
        Hashtbl.remove conns (Evloop.fd_int conn.c_fd);
        (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())
      end
    and update_interest conn =
      if not conn.c_closed then begin
        let want_write =
          conn.c_stream <> None || not (Queue.is_empty conn.c_out)
        in
        let want_read =
          (not conn.c_close_after)
          && (not conn.c_eof)
          && Queue.length conn.c_pending < max_pipeline
        in
        Evloop.modify loop conn.c_fd ~read:want_read ~write:want_write
      end
    and begin_shutdown () =
      if not !stopping then begin
        stopping := true;
        drain_deadline := Unix.gettimeofday () +. 5.0;
        if !listener_open then begin
          listener_open := false;
          Evloop.remove loop lsock;
          (try Unix.close lsock with Unix.Unix_error _ -> ())
        end;
        let all = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
        List.iter
          (fun c ->
            c.c_close_after <- true;
            if conn_drained c then close_conn c else update_interest c)
          all
      end
    and enqueue_response conn ~keep resp =
      (* The fault site that makes the peer vanish instead of
         responding — same observable failure as the old blocking
         server's [Http.write_response] guard. *)
      match Faults.guard "http.write_response" with
      | exception Faults.Injected _ ->
          (match resp.Http.stream with
          | Some s -> s.Http.close_stream ()
          | None -> ());
          close_conn conn
      | () ->
          if conn.c_served > 0 then
            Metrics.counter "dsvc_server_keepalive_reuse_total"
              ~help:"Responses sent on an already-used (kept-alive) connection";
          conn.c_served <- conn.c_served + 1;
          incr served;
          let header = Http.serialize_header ~keep_alive:keep resp in
          Queue.push { o_data = header; o_off = 0 } conn.c_out;
          (match resp.Http.stream with
          | Some s -> conn.c_stream <- Some s
          | None ->
              if resp.Http.body <> "" then
                Queue.push { o_data = resp.Http.body; o_off = 0 } conn.c_out);
          if not keep then conn.c_close_after <- true;
          (match max_requests with
          | Some m when !served >= m -> begin_shutdown ()
          | _ -> ())
    and fill_from_stream conn =
      match conn.c_stream with
      | None -> ()
      | Some s ->
          if Queue.length conn.c_out < 4 then begin
            match
              Faults.guard "http.write_chunk";
              s.Http.read_chunk ()
            with
            | exception Faults.Injected _ ->
                (* the peer sees the connection die mid-body *)
                close_conn conn
            | Ok (Some chunk) ->
                Queue.push { o_data = chunk; o_off = 0 } conn.c_out;
                fill_from_stream conn
            | Ok None ->
                s.Http.close_stream ();
                conn.c_stream <- None
            | Error e ->
                (* The status line is already on the wire: cut the body
                   short so the Content-Length mismatch surfaces
                   client-side instead of a complete-looking bad
                   response. *)
                Log.warn (fun m -> m "streamed body failed: %s" e);
                s.Http.close_stream ();
                conn.c_stream <- None;
                Queue.clear conn.c_pending;
                conn.c_close_after <- true
          end
    and dispatch conn =
      if
        (not conn.c_busy)
        && (not conn.c_closed)
        && (not conn.c_close_after)
        && conn.c_stream = None
        && not (Queue.is_empty conn.c_pending)
      then begin
        let req = Queue.pop conn.c_pending in
        let keep = Http.keep_alive req in
        conn.c_busy <- true;
        conn.c_last_activity <- Unix.gettimeofday ();
        let route = route_label req.Http.meth req.Http.path in
        submit (fun () ->
            let resp =
              if lock_free_route route then handle_safe ?cluster repo req
              else with_repo_lock (fun () -> handle_safe ?cluster repo req)
            in
            Evloop.post loop (fun () -> on_response conn keep resp))
      end
    and on_response conn keep resp =
      conn.c_busy <- false;
      if conn.c_closed then (
        match resp.Http.stream with
        | Some s -> s.Http.close_stream ()
        | None -> ())
      else begin
        enqueue_response conn ~keep resp;
        if not conn.c_closed then begin
          dispatch conn;
          update_interest conn;
          try_flush conn
        end
      end
    and try_flush conn =
      if not conn.c_closed then begin
        fill_from_stream conn;
        let progress = ref true in
        (try
           while
             !progress
             && (not conn.c_closed)
             && not (Queue.is_empty conn.c_out)
           do
             let slices = gather conn in
             let n = Evloop.writev conn.c_fd slices in
             if n <= 0 then progress := false
             else begin
               advance conn n;
               fill_from_stream conn
             end
           done
         with Unix.Unix_error _ -> close_conn conn);
        if not conn.c_closed then
          if Queue.is_empty conn.c_out && conn.c_stream = None then
            if conn.c_close_after then close_conn conn
            else begin
              (* a finished stream unblocks the next pipelined response *)
              dispatch conn;
              if conn.c_eof && conn_drained conn then close_conn conn
              else update_interest conn
            end
          else update_interest conn
      end
    and drain_parser conn =
      if
        (not conn.c_closed)
        && (not conn.c_close_after)
        && Queue.length conn.c_pending < max_pipeline
      then
        match Http.Parser.next conn.c_parser with
        | `Request req ->
            Queue.push req conn.c_pending;
            drain_parser conn
        | `Partial -> ()
        | `Reject r ->
            record_rejected "parse";
            enqueue_response conn ~keep:false
              (Http.error r.Http.Parser.reject_status
                 (r.Http.Parser.reject_reason ^ "\n"))
    and on_readable conn =
      (* lint: reactor-ok c_fd is O_NONBLOCK and the loop signalled
         readability; this read returns immediately (EAGAIN handled) *)
      match Unix.read conn.c_fd rbuf 0 (Bytes.length rbuf) with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> close_conn conn
      | 0 ->
          conn.c_eof <- true;
          if conn_drained conn then close_conn conn else update_interest conn
      | n ->
          conn.c_last_activity <- Unix.gettimeofday ();
          Http.Parser.feed conn.c_parser rbuf 0 n;
          drain_parser conn;
          if not conn.c_closed then begin
            dispatch conn;
            update_interest conn;
            (* a parse rejection enqueues its response directly *)
            if not (Queue.is_empty conn.c_out) then try_flush conn
          end
    and on_event conn = function
      | `Read -> on_readable conn
      | `Write -> try_flush conn
    in
    let reject_overload fd =
      record_rejected "max_connections";
      let resp = Http.error 503 "server at connection capacity\n" in
      let s = Http.serialize_header ~keep_alive:false resp ^ resp.Http.body in
      (* lint: reactor-ok best-effort single write of a tiny 503 to a
         fresh socket whose buffer is empty; a short or failed write
         just loses the courtesy body before the close below *)
      (try ignore (Unix.write_substring fd s 0 (String.length s))
       with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    in
    let rec do_accept () =
      (* lint: reactor-ok lsock is O_NONBLOCK and the loop signalled a
         pending connection; EAGAIN from a raced-away one is handled *)
      match Unix.accept ~cloexec:true lsock with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception
          Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE | Unix.ECONNABORTED), _, _)
        ->
          Log.warn (fun m -> m "accept failed transiently")
      | fd, _ ->
          if !stopping then (
            try Unix.close fd with Unix.Unix_error _ -> ())
          else if Hashtbl.length conns >= max_connections then begin
            reject_overload fd;
            do_accept ()
          end
          else begin
            Metrics.counter "dsvc_server_connections_total"
              ~help:"TCP connections accepted";
            (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let conn =
              {
                c_fd = fd;
                c_parser = Http.Parser.create ();
                c_pending = Queue.create ();
                c_out = Queue.create ();
                c_stream = None;
                c_busy = false;
                c_close_after = false;
                c_eof = false;
                c_closed = false;
                c_last_activity = Unix.gettimeofday ();
                c_served = 0;
              }
            in
            Hashtbl.replace conns (Evloop.fd_int fd) conn;
            Evloop.add loop fd ~read:true ~write:false (on_event conn);
            do_accept ()
          end
    in
    let sweep now =
      let expired =
        Hashtbl.fold
          (fun _ c acc ->
            if
              c.c_closed || c.c_busy
              || (not (Queue.is_empty c.c_out))
              || c.c_stream <> None
            then acc
            else
              let idle = now -. c.c_last_activity in
              if Http.Parser.in_request c.c_parser then
                if idle > request_timeout then `Timeout c :: acc else acc
              else if Queue.is_empty c.c_pending && idle > idle_timeout then
                `Idle c :: acc
              else acc)
          conns []
      in
      List.iter
        (function
          | `Idle c -> close_conn c
          | `Timeout c ->
              (* mid-request and silent for too long: a 408, then close *)
              record_rejected "timeout";
              enqueue_response c ~keep:false
                (Http.error 408 "request timeout\n");
              try_flush c)
        expired
    in
    Evloop.add loop lsock ~read:true ~write:false (fun _ -> do_accept ());
    if sampler_armed then
      ignore
        (Evloop.add_timer loop
           ~period:(Timeseries.step (Repo.timeseries repo))
           sampler_tick);
    Fun.protect
      ~finally:(fun () ->
        restore_signals ();
        Mutex.lock jobs_mutex;
        quit := true;
        Condition.broadcast jobs_cond;
        Mutex.unlock jobs_mutex;
        List.iter Thread.join threads;
        let all = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
        List.iter close_conn all;
        (* drain late-posted responses so their streams close *)
        ignore (Evloop.wait loop ~timeout:0.0);
        if !listener_open then begin
          listener_open := false;
          try Unix.close lsock with Unix.Unix_error _ -> ()
        end;
        Evloop.close loop)
      (fun () ->
        while
          (not !stop)
          &&
          if !stopping then
            Hashtbl.length conns > 0
            && Unix.gettimeofday () < !drain_deadline
          else true
        do
          ignore (Evloop.wait loop ~timeout:0.2);
          sweep (Unix.gettimeofday ())
        done);
    if !stop then begin
      (* Signal-driven shutdown is a flight-dump trigger: persist the
         recorder so the operator can see what the server was doing
         right before the SIGTERM (DESIGN.md §11). A clean ring means
         nothing happened — write nothing. *)
      if Flight.event_count () > 0 then begin
        let path = Flight.default_path () in
        match Fsutil.write_file path (Flight.to_json ()) with
        | Ok () -> Printf.printf "dsvc: wrote flight record to %s\n%!" path
        | Error e ->
            Log.warn (fun m -> m "cannot write flight record %s: %s" path e)
      end;
      Printf.printf "dsvc server shutting down\n%!"
    end;
    Ok ()
  with Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
