let src = Logs.Src.create "dsvc.server" ~doc:"dsvc HTTP server"

module Log = (val Logs.src_log src : Logs.LOG)
module Obs = Versioning_obs.Obs
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Context = Versioning_obs.Context
module Flight = Versioning_obs.Flight
module Fsutil = Versioning_util.Fsutil

let parse_strategy s =
  match String.split_on_char '=' s with
  | [ "min-storage" ] -> Ok Repo.Min_storage
  | [ "min-recreation" ] -> Ok Repo.Min_recreation
  | [ "balanced"; f ] | [ "budgeted-sum"; f ] -> (
      match float_of_string_opt f with
      | Some f when f >= 1.0 -> Ok (Repo.Budgeted_sum f)
      | _ -> Error "balanced=FACTOR needs FACTOR >= 1")
  | [ "bounded-max"; f ] -> (
      match float_of_string_opt f with
      | Some f when f >= 1.0 -> Ok (Repo.Bounded_max f)
      | _ -> Error "bounded-max=FACTOR needs FACTOR >= 1")
  | [ "git" ] -> Ok (Repo.Git_window (10, 50))
  | [ "svn" ] -> Ok Repo.Svn_skip
  | _ ->
      Error
        "expected min-storage | min-recreation | balanced=F | bounded-max=F \
         | git | svn"

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* Stable route template per request, so metric label cardinality is
   bounded no matter what paths clients send. *)
let route_label meth path =
  match (meth, segments path) with
  | "GET", [ "versions" ] -> "/versions"
  | "GET", [ "checkout"; _ ] -> "/checkout/:name"
  | "POST", [ "commit" ] -> "/commit"
  | "GET", [ "stats" ] -> "/stats"
  | "GET", [ "branches" ] -> "/branches"
  | "POST", [ "branch"; _ ] -> "/branch/:name"
  | "POST", [ "switch"; _ ] -> "/switch/:name"
  | "GET", [ "tags" ] -> "/tags"
  | "POST", [ "tag"; _ ] -> "/tag/:name"
  | "GET", [ "diff"; _; _ ] -> "/diff/:a/:b"
  | "POST", [ "optimize" ] -> "/optimize"
  | "GET", [ "verify" ] -> "/verify"
  | "GET", [ "metrics" ] -> "/metrics"
  | "GET", [ "trace"; _ ] -> "/trace/:request_id"
  | "GET", [ "flight" ] -> "/flight"
  | "GET", [ "health" ] -> "/health"
  | "GET", [ "blob"; _ ] -> "/blob/:digest"
  | "GET", [ "blob"; _; "stat" ] -> "/blob/:digest/stat"
  | "POST", [ "blob"; _ ] -> "/blob/:digest"
  | "POST", [ "blob"; _; "quarantine" ] -> "/blob/:digest/quarantine"
  | "DELETE", [ "blob"; _ ] -> "/blob/:digest"
  | "GET", [ "blobs" ] -> "/blobs"
  | "GET", [ "meta" ] -> "/meta"
  | "POST", [ "meta"; "sync" ] -> "/meta/sync"
  | "POST", [ "anti-entropy" ] -> "/anti-entropy"
  | _, _ -> "other"

let stats_body (s : Repo.stats) =
  Printf.sprintf
    "versions %d\nstorage_bytes %d\nmaterialized %d\ndelta_stored %d\n\
     max_chain %d\nsum_recreation %.0f\nmax_recreation %.0f\n"
    s.Repo.n_versions s.Repo.storage_bytes s.Repo.n_full s.Repo.n_delta
    s.Repo.max_chain s.Repo.sum_recreation_bytes s.Repo.max_recreation_bytes

(* Map a domain error to the right status: resolution failures are the
   client naming something that does not exist (404); everything else
   (duplicate branch, bad parent, storage failure surfaced as Error)
   is a conflict with repository state (409). *)
let status_of_error e =
  let contains needle =
    let nl = String.length needle and el = String.length e in
    let rec go i = i + nl <= el && (String.sub e i nl = needle || go (i + 1)) in
    go 0
  in
  if
    contains "cannot resolve" || contains "not found"
    || contains "is not stored" || contains "no branch named"
    || contains "unknown version" || contains "unknown parent version"
  then 404
  else 409

(* ---- recent-request table for GET /trace/:request_id ----

   A small bounded ring of per-request summaries (request id, route,
   status, latency, and the span aggregate of that request's trace),
   written by [handle_safe] after every request so a debug client can
   ask "what did request X spend its time on" shortly after the
   fact. *)

type recent_request = {
  r_request : string;
  r_trace : string;
  r_route : string;
  r_status : int;
  r_dur : float;
  r_spans : Trace.agg list;
}

let recent_capacity = 64

let recent_mutex = Mutex.create ()

(* lint: mutable-ok bounded ring of recent request summaries; writes
   take [recent_mutex], read only by the /trace debug endpoint *)
let recent_ring : recent_request option array = Array.make recent_capacity None

(* lint: mutable-ok ring cursor, same mutex *)
let recent_cursor = ref 0

let with_recent_lock f =
  Mutex.lock recent_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock recent_mutex) f

let remember_request r =
  with_recent_lock (fun () ->
      recent_ring.(!recent_cursor) <- Some r;
      recent_cursor := (!recent_cursor + 1) mod recent_capacity)

let find_recent_request rid =
  with_recent_lock (fun () ->
      (* newest first: walk backwards from the cursor *)
      let rec go i n =
        if n >= recent_capacity then None
        else
          let idx = (i + recent_capacity) mod recent_capacity in
          match recent_ring.(idx) with
          | Some r when r.r_request = rid -> Some r
          | _ -> go (idx - 1) (n + 1)
      in
      go (!recent_cursor - 1) 0)

let recent_request_body r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"request_id":"%s","trace_id":"%s","route":"%s","status":%d,"duration_s":%.6f,"spans":[|}
       (Metrics.json_escape r.r_request)
       (Metrics.json_escape r.r_trace)
       (Metrics.json_escape r.r_route)
       r.r_status r.r_dur);
  List.iteri
    (fun i (a : Trace.agg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"name":"%s","count":%d,"total_s":%.6f}|}
           (Metrics.json_escape a.Trace.agg_name)
           a.Trace.count a.Trace.total_s))
    r.r_spans;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* Cluster wiring, when serving with [--peers]: the node's own shard
   ([local_store] — what the [/blob] peer routes serve, so replication
   never recurses through the quorum), the replicated view the repo
   reads and writes through, and typed clients to each peer for
   metadata pushes. *)
type cluster = {
  local_store : Object_store.t;
  replicated : Replicated.t;
  peer_clients : (string * Client.t) list;
}

(* Routes whose success changes repository metadata — each one is
   followed by a generation-stamped push to the usable peers. *)
let mutating_route = function
  | "/commit" | "/branch/:name" | "/switch/:name" | "/tag/:name"
  | "/optimize" ->
      true
  | _ -> false

let push_meta_to_peers cluster repo =
  match Repo.export_meta repo with
  | Error e -> Log.warn (fun m -> m "meta push skipped: %s" e)
  | Ok meta ->
      List.iter
        (fun (name, client) ->
          if Replicated.usable cluster.replicated name then
            match Client.push_meta client meta with
            | Ok _ -> ()
            | Error e ->
                (* The peer will converge at its next anti-entropy;
                   blob traffic keeps the failure detector informed. *)
                Log.warn (fun m -> m "meta push to %s failed: %s" name e))
        cluster.peer_clients

let health_body ?cluster repo =
  let b = Buffer.create 256 in
  let store =
    match cluster with
    | Some c -> c.local_store
    | None -> Repo.object_store repo
  in
  (match (Object_store.backend store).Backend.ping () with
  | Ok () -> Buffer.add_string b "status ok\nstore ok\n"
  | Error e -> Buffer.add_string b (Printf.sprintf "status degraded\nstore %s\n" e));
  Buffer.add_string b
    (Printf.sprintf "journal %s\n"
       (if Repo.journal_pending repo then "pending" else "clean"));
  Buffer.add_string b (Printf.sprintf "generation %d\n" (Repo.generation repo));
  (match cluster with
  | None -> ()
  | Some c ->
      let r = c.replicated in
      Buffer.add_string b (Printf.sprintf "self %s\n" (Replicated.self r));
      Buffer.add_string b
        (Printf.sprintf "ring_epoch %s\n" (Replicated.ring_epoch r));
      Buffer.add_string b
        (Printf.sprintf "replicas %d\n" (Replicated.replicas r));
      Buffer.add_string b
        (Printf.sprintf "hints %d\n" (Replicated.pending_hints r));
      List.iter
        (fun (name, state, err) ->
          Buffer.add_string b
            (Printf.sprintf "peer %s %s%s\n" name
               (match state with
               | `Up -> "up"
               | `Down -> "down"
               | `Probe -> "probe")
               (if err = "" then "" else " " ^ err)))
        (Replicated.peers r));
  Buffer.contents b

let handle ?cluster repo (req : Http.request) =
  let local_store =
    match cluster with
    | Some c -> c.local_store
    | None -> Repo.object_store repo
  in
  let valid_digest d k =
    if Content_hash.is_valid d then k ()
    else Http.error 400 (Printf.sprintf "invalid digest %S\n" d)
  in
  let resolve name =
    match Repo.resolve repo name with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "cannot resolve %S" name)
  in
  let of_result ?(created = false) = function
    | Ok body ->
        if created then
          {
            Http.status = 201;
            content_type = "text/plain; charset=utf-8";
            headers = [];
            body;
          }
        else Http.ok body
    | Error e -> Http.error (status_of_error e) (e ^ "\n")
  in
  match (req.Http.meth, segments req.Http.path) with
  | "GET", [ "versions" ] ->
      let lines =
        Repo.log repo
        |> List.map (fun (c : Repo.commit_info) ->
               Printf.sprintf "%d %s %s" c.id
                 (match c.parents with
                 | [] -> "-"
                 | ps -> String.concat "," (List.map string_of_int ps))
                 c.message)
      in
      Http.ok (String.concat "\n" lines ^ "\n")
  | "GET", [ "checkout"; name ] -> (
      match Result.bind (resolve name) (Repo.checkout repo) with
      | Ok content -> Http.ok ~content_type:"application/octet-stream" content
      | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "commit" ] -> (
      let message =
        Option.value (List.assoc_opt "message" req.Http.query) ~default:""
      in
      let parents =
        match List.assoc_opt "parents" req.Http.query with
        | None | Some "" -> Ok None
        | Some ps -> (
            let ids = String.split_on_char ',' ps |> List.map int_of_string_opt in
            if List.for_all Option.is_some ids then
              Ok (Some (List.map Option.get ids))
            else Error "bad parents list")
      in
      match parents with
      | Error e -> Http.error 400 (e ^ "\n")
      | Ok parents ->
          of_result ~created:true
            (Result.map string_of_int
               (Repo.commit repo ~message ?parents req.Http.body)))
  | "GET", [ "stats" ] -> Http.ok (stats_body (Repo.stats repo))
  | "GET", [ "branches" ] ->
      Http.ok
        (String.concat "\n"
           (List.map
              (fun (n, v) ->
                Printf.sprintf "%s%s %d"
                  (if n = Repo.current_branch repo then "*" else "")
                  n v)
              (Repo.branches repo))
        ^ "\n")
  | "POST", [ "branch"; name ] ->
      let at =
        Option.bind (List.assoc_opt "at" req.Http.query) int_of_string_opt
      in
      of_result
        (Result.map (fun () -> "ok\n") (Repo.create_branch repo name ?at ()))
  | "POST", [ "switch"; name ] ->
      of_result (Result.map (fun () -> "ok\n") (Repo.switch repo name))
  | "GET", [ "tags" ] ->
      Http.ok
        (String.concat "\n"
           (List.map (fun (n, v) -> Printf.sprintf "%s %d" n v) (Repo.tags repo))
        ^ "\n")
  | "POST", [ "tag"; name ] ->
      let at =
        Option.bind (List.assoc_opt "at" req.Http.query) int_of_string_opt
      in
      of_result (Result.map (fun () -> "ok\n") (Repo.tag repo name ?at ()))
  | "GET", [ "diff"; a; b ] -> (
      match
        Result.bind (resolve a) (fun va ->
            Result.bind (resolve b) (fun vb -> Repo.diff repo va vb))
      with
      | Ok d -> Http.ok d
      | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "optimize" ] -> (
      match List.assoc_opt "strategy" req.Http.query with
      | None -> Http.error 400 "missing strategy parameter\n"
      | Some s -> (
          match parse_strategy s with
          | Error e -> Http.error 400 (e ^ "\n")
          | Ok strategy ->
              of_result
                (Result.map stats_body (Repo.optimize repo strategy))))
  | "GET", [ "verify" ] -> (
      match Repo.verify repo with
      | Ok () -> Http.ok "consistent\n"
      | Error problems ->
          Http.error 500 (String.concat "\n" problems ^ "\n"))
  | "GET", [ "metrics" ] -> (
      match List.assoc_opt "format" req.Http.query with
      | Some "json" ->
          {
            Http.status = 200;
            content_type = "application/json";
            headers = [];
            body = Metrics.to_json ();
          }
      | _ ->
          {
            Http.status = 200;
            content_type = "text/plain; version=0.0.4; charset=utf-8";
            headers = [];
            body = Metrics.to_prometheus ();
          })
  | "GET", [ "trace"; rid ] -> (
      (* Debug endpoint: the span summary of a recent request. Only
         requests still in the bounded ring are answerable. *)
      match find_recent_request rid with
      | Some r ->
          Http.ok ~content_type:"application/json" (recent_request_body r)
      | None ->
          Http.error 404
            (Printf.sprintf "no recent request %S (ring keeps the last %d)\n"
               rid recent_capacity))
  | "GET", [ "flight" ] ->
      (* The always-on flight recorder, for `dsvc flight-dump`. *)
      Http.ok ~content_type:"application/json" (Flight.to_json ())
  | "GET", [ "health" ] -> Http.ok (health_body ?cluster repo)
  (* ---- peer blob routes: always the node's LOCAL shard ---- *)
  | "GET", [ "blob"; digest ] ->
      valid_digest digest @@ fun () -> (
        match Object_store.get local_store digest with
        | Ok content ->
            Http.ok ~content_type:"application/octet-stream" content
        | Error e -> Http.error 404 (e ^ "\n"))
  | "GET", [ "blob"; digest; "stat" ] ->
      valid_digest digest @@ fun () -> (
        match Object_store.get local_store digest with
        | Ok content ->
            Http.ok (Printf.sprintf "present %d\n" (String.length content))
        | Error e -> Http.error 404 (e ^ "\n"))
  | "POST", [ "blob"; digest ] ->
      valid_digest digest @@ fun () ->
      if Content_hash.hex req.Http.body <> digest then
        Http.error 409 "content does not match digest\n"
      else (
        match Object_store.put local_store req.Http.body with
        | Ok _ ->
            {
              Http.status = 201;
              content_type = "text/plain; charset=utf-8";
              headers = [];
              body = "stored\n";
            }
        | Error e -> Http.error 409 (e ^ "\n"))
  | "POST", [ "blob"; digest; "quarantine" ] ->
      valid_digest digest @@ fun () -> (
        match Object_store.quarantine local_store digest with
        | Ok dst -> Http.ok (dst ^ "\n")
        | Error e -> Http.error 404 (e ^ "\n"))
  | "DELETE", [ "blob"; digest ] ->
      valid_digest digest @@ fun () ->
      Object_store.delete local_store digest;
      Http.ok "deleted\n"
  | "GET", [ "blobs" ] ->
      let lines =
        (Object_store.backend local_store).Backend.list ()
        |> List.map (fun (d, size) -> Printf.sprintf "%s %d" d size)
      in
      Http.ok (String.concat "\n" lines ^ "\n")
  (* ---- metadata replication ---- *)
  | "GET", [ "meta" ] -> (
      match Repo.export_meta repo with
      | Ok meta -> Http.ok meta
      | Error e -> Http.error 500 (e ^ "\n"))
  | "POST", [ "meta"; "sync" ] -> (
      match Repo.adopt_meta repo req.Http.body with
      | Ok true -> Http.ok "adopted\n"
      | Ok false -> Http.ok "stale\n"
      | Error e -> Http.error 409 (e ^ "\n"))
  | "POST", [ "anti-entropy" ] -> (
      match cluster with
      | None -> Http.error 409 "not serving in cluster mode\n"
      | Some c ->
          (* Bring rejoined peers current: probe first (a restarted
             node must not wait out its probation), then metadata (so
             their reference set is ours), then blob replication. *)
          Replicated.probe c.replicated;
          push_meta_to_peers c repo;
          let report =
            Replicated.anti_entropy c.replicated
              ~digests:(Repo.referenced_digests repo)
          in
          let b = Buffer.create 128 in
          Buffer.add_string b
            (Printf.sprintf "checked %d\nrepaired %d\nfailed %d\n"
               report.Replicated.checked report.Replicated.repaired
               (List.length report.Replicated.failed));
          List.iter
            (fun f -> Buffer.add_string b (Printf.sprintf "failure %s\n" f))
            report.Replicated.failed;
          if report.Replicated.failed = [] then Http.ok (Buffer.contents b)
          else Http.error 500 (Buffer.contents b))
  | ("GET" | "POST" | "DELETE"), _ -> Http.error 404 "no such route\n"
  | _, _ -> Http.error 405 "method not allowed\n"

(* Recover the client's trace context from the request headers: the
   trace id and parent span from [traceparent], the request id from
   [X-Dsvc-Request-Id] (sanitized — it ends up in log lines). A
   request with neither gets a fresh server-side context, so every
   access-log line has a request id either way. *)
let context_of_request (req : Http.request) =
  let base =
    match
      Option.bind
        (List.assoc_opt "traceparent" req.Http.headers)
        Context.of_traceparent
    with
    | Some ctx -> ctx
    | None -> Context.make ()
  in
  match
    Option.bind
      (List.assoc_opt "x-dsvc-request-id" req.Http.headers)
      Context.sanitize_id
  with
  | Some rid -> { base with Context.request_id = rid }
  | None -> base

(* A raising handler must cost the client a 500, not the server its
   life (and not the client a silently dropped connection).

   This wrapper is also where a request joins its client's trace: the
   extracted context becomes ambient (stamping spans and log lines),
   the [server.request] span attaches under the client's span, the
   access log records route/status/latency/request id, and the
   request's span summary lands in the recent-request ring for
   GET /trace/:request_id. The wall-clock read here is a server-tier
   operational measurement, not an Obs-gated one — it feeds the access
   log, never a planning decision (DESIGN.md §11). *)
let handle_safe ?cluster repo req =
  let ctx = context_of_request req in
  Context.with_context ctx @@ fun () ->
  let run () =
    try handle ?cluster repo req
    with e -> Http.error 500 ("internal error: " ^ Printexc.to_string e ^ "\n")
  in
  let route = route_label req.Http.meth req.Http.path in
  let t0 = Unix.gettimeofday () in
  let resp =
    Trace.with_span ?parent:ctx.Context.parent_span "server.request" run
  in
  let dur = Unix.gettimeofday () -. t0 in
  if Obs.enabled () then begin
    (* Per-route count/latency/status; the route template keeps label
       cardinality bounded. *)
    Metrics.counter "dsvc_server_requests_total"
      ~labels:
        [ ("route", route); ("status", string_of_int resp.Http.status) ]
      ~help:"HTTP requests handled, by route template and status";
    Metrics.observe "dsvc_server_request_seconds"
      ~labels:[ ("route", route) ] dur
      ~help:"HTTP request handling latency, by route template"
  end;
  (* Access log: the reporter (Logctx) stamps request/trace ids from
     the ambient context. *)
  Log.info (fun m ->
      m "%s %s -> %d (%.3fms)" req.Http.meth req.Http.path resp.Http.status
        (dur *. 1000.0));
  let span_summary =
    if Obs.enabled () then
      Trace.summarize_spans
        (List.filter
           (fun (s : Trace.span) -> s.Trace.trace = Some ctx.Context.trace_id)
           (Trace.spans ()))
    else []
  in
  remember_request
    {
      r_request = ctx.Context.request_id;
      r_trace = ctx.Context.trace_id;
      r_route = route;
      r_status = resp.Http.status;
      r_dur = dur;
      r_spans = span_summary;
    };
  (* Successful mutations propagate metadata to the peers while still
     inside the request's trace, so the pushes appear in its spans. *)
  (match cluster with
  | Some c
    when mutating_route route && resp.Http.status >= 200
         && resp.Http.status < 300 ->
      push_meta_to_peers c repo
  | _ -> ());
  (* Echo the request id so clients can quote it back at /trace/:id. *)
  {
    resp with
    Http.headers =
      ("X-Dsvc-Request-Id", ctx.Context.request_id) :: resp.Http.headers;
  }

let serve ?cluster repo ~port ?(host = "127.0.0.1") ?max_requests
    ?(request_timeout = 30.0) () =
  (* Serving is an operational mode: turn the observability layer on
     so GET /metrics has data, whatever the environment says. *)
  Obs.enable ();
  try
    let addr = Unix.inet_addr_of_string host in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (addr, port));
    Unix.listen sock 16;
    (* A receive timeout on the listening socket turns the blocking
       [accept] into a poll, so shutdown requests are noticed promptly
       even when no client ever connects. *)
    (try Unix.setsockopt_float sock Unix.SO_RCVTIMEO 0.2
     with Unix.Unix_error _ -> ());
    let actual_port =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    Printf.printf "dsvc server listening on %s:%d\n%!" host actual_port;
    let stop = ref false in
    let old_int = ref None and old_term = ref None in
    (try
       old_int :=
         Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true)));
       old_term :=
         Some
           (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true)))
     with Invalid_argument _ | Sys_error _ -> ());
    let restore_signals () =
      let restore name signum = function
        | None -> ()
        | Some behaviour -> (
            try Sys.set_signal signum behaviour
            with e ->
              (* Restoration is best effort (the process is exiting),
                 but a failure is still worth a trace. *)
              Log.warn (fun m ->
                  m "could not restore %s handler: %s" name
                    (Printexc.to_string e)))
      in
      restore "SIGINT" Sys.sigint !old_int;
      restore "SIGTERM" Sys.sigterm !old_term
    in
    let served = ref 0 in
    let continue () =
      (not !stop)
      && match max_requests with None -> true | Some m -> !served < m
    in
    Fun.protect
      ~finally:(fun () ->
        restore_signals ();
        try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        while continue () do
          match Unix.accept sock with
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
            ->
              (* accept-poll timeout or signal: re-check [stop] *)
              ()
          | client, _ ->
              incr served;
              (* A stalled or dead peer must not wedge the server: cap
                 both directions of per-connection I/O. *)
              (try
                 Unix.setsockopt_float client Unix.SO_RCVTIMEO request_timeout;
                 Unix.setsockopt_float client Unix.SO_SNDTIMEO request_timeout
               with Unix.Unix_error _ -> ());
              let ic = Unix.in_channel_of_descr client in
              let oc = Unix.out_channel_of_descr client in
              (try
                 (match Http.read_request ic with
                 | Ok req -> Http.write_response oc (handle_safe ?cluster repo req)
                 | Error e -> Http.write_response oc (Http.error 400 (e ^ "\n")));
                 flush oc
               with e ->
                 (* The peer vanished mid-exchange (EPIPE, reset,
                    timeout) — its connection dies, the accept loop
                    must not. *)
                 Log.warn (fun m ->
                     m "connection aborted: %s" (Printexc.to_string e)));
              (try Unix.close client with Unix.Unix_error _ -> ())
        done);
    if !stop then begin
      (* Signal-driven shutdown is a flight-dump trigger: persist the
         recorder so the operator can see what the server was doing
         right before the SIGTERM (DESIGN.md §11). A clean ring means
         nothing happened — write nothing. *)
      if Flight.event_count () > 0 then begin
        let path = Flight.default_path () in
        match Fsutil.write_file path (Flight.to_json ()) with
        | Ok () -> Printf.printf "dsvc: wrote flight record to %s\n%!" path
        | Error e ->
            Log.warn (fun m -> m "cannot write flight record %s: %s" path e)
      end;
      Printf.printf "dsvc server shutting down\n%!"
    end;
    Ok ()
  with Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
