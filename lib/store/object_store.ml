type t = { dir : string }

let ( let* ) = Result.bind

let mkdir_p dir =
  let rec go d =
    if d = "" || d = "/" || Sys.file_exists d then ()
    else begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755 with Sys_error _ -> ()
    end
  in
  go dir;
  if Sys.file_exists dir && Sys.is_directory dir then Ok ()
  else Error (Printf.sprintf "cannot create directory %s" dir)

let create ~dir =
  let* () = mkdir_p dir in
  Ok { dir }

let path_of t digest =
  Filename.concat t.dir
    (Filename.concat (String.sub digest 0 2) (String.sub digest 2 30))

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  with Sys_error e -> Error e

let write_file_atomic path content =
  try
    let dir = Filename.dirname path in
    (match mkdir_p dir with Ok () -> () | Error e -> failwith e);
    let tmp = Filename.temp_file ~temp_dir:dir ".obj" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Sys.rename tmp path;
    Ok ()
  with Sys_error e | Failure e -> Error e

(* On-disk framing: blobs are stored raw ('R' + bytes) or
   LZ77-compressed ('C' + codestream), whichever is smaller — the
   digest always addresses the logical content. *)

let frame content =
  let compressed = Versioning_delta.Compress.lz77 content in
  if String.length compressed < String.length content then "C" ^ compressed
  else "R" ^ content

let unframe framed =
  if String.length framed = 0 then Error "empty object file"
  else
    match framed.[0] with
    | 'R' -> Ok (String.sub framed 1 (String.length framed - 1))
    | 'C' -> (
        try
          Ok
            (Versioning_delta.Compress.unlz77
               (String.sub framed 1 (String.length framed - 1)))
        with Invalid_argument e -> Error ("corrupt compressed object: " ^ e))
    | _ -> Error "unknown object framing"

let put t content =
  let digest = Content_hash.hex content in
  let path = path_of t digest in
  if Sys.file_exists path then Ok digest
  else
    let* () = write_file_atomic path (frame content) in
    Ok digest

let get t digest =
  if not (Content_hash.is_valid digest) then
    Error (Printf.sprintf "invalid digest %S" digest)
  else begin
    let path = path_of t digest in
    if Sys.file_exists path then
      let* framed = read_file path in
      unframe framed
    else Error (Printf.sprintf "object %s not found" digest)
  end

let mem t digest =
  Content_hash.is_valid digest && Sys.file_exists (path_of t digest)

let delete t digest =
  if mem t digest then try Sys.remove (path_of t digest) with Sys_error _ -> ()

let list_digests t =
  if not (Sys.file_exists t.dir) then []
  else
    Sys.readdir t.dir |> Array.to_list
    |> List.concat_map (fun prefix ->
           let sub = Filename.concat t.dir prefix in
           if Sys.is_directory sub && String.length prefix = 2 then
             Sys.readdir sub |> Array.to_list
             |> List.filter_map (fun rest ->
                    let digest = prefix ^ rest in
                    if Content_hash.is_valid digest then Some digest else None)
           else [])

let total_bytes t =
  List.fold_left
    (fun acc digest ->
      let path = path_of t digest in
      match (Unix.stat path).Unix.st_size with
      | size -> acc + size
      | exception Unix.Unix_error _ -> acc)
    0 (list_digests t)
