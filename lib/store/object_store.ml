type t = { dir : string }

let ( let* ) = Result.bind

module Metrics = Versioning_obs.Metrics

(* Observability only: latencies, byte volumes and verification
   outcomes. No-ops while DSVC_OBS is off; values never influence
   store behaviour. *)
let record_put ~bytes =
  Metrics.counter "dsvc_store_put_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes written through Object_store.put"

let record_get ~bytes =
  Metrics.counter "dsvc_store_get_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes served by Object_store.get"

let record_verify result =
  Metrics.counter "dsvc_store_digest_verify_total"
    ~labels:[ ("result", result) ]
    ~help:"Digest verifications on object reads, by outcome"

let create ~dir =
  let* () = Fsutil.mkdir_p dir in
  Ok { dir }

let path_of t digest =
  Filename.concat t.dir
    (Filename.concat (String.sub digest 0 2) (String.sub digest 2 30))

let quarantine_dir t = Filename.concat t.dir "quarantine"

(* On-disk framing: blobs are stored raw ('R' + bytes) or
   LZ77-compressed ('C' + codestream), whichever is smaller — the
   digest always addresses the logical content. *)

let frame content =
  let compressed = Versioning_delta.Compress.lz77 content in
  if String.length compressed < String.length content then "C" ^ compressed
  else "R" ^ content

let unframe framed =
  if String.length framed = 0 then Error "empty object file"
  else
    match framed.[0] with
    | 'R' -> Ok (String.sub framed 1 (String.length framed - 1))
    | 'C' -> (
        try
          Ok
            (Versioning_delta.Compress.unlz77
               (String.sub framed 1 (String.length framed - 1)))
        with Invalid_argument e -> Error ("corrupt compressed object: " ^ e))
    | _ -> Error "unknown object framing"

let put t content =
  Metrics.time "dsvc_store_put_seconds"
    ~help:"Object_store.put latency (including the no-op dedup path)"
  @@ fun () ->
  let digest = Content_hash.hex content in
  let path = path_of t digest in
  if Sys.file_exists path then Ok digest
  else
    let* () =
      Fsutil.write_file_atomic ~site:"object_store.write" path (frame content)
    in
    record_put ~bytes:(String.length content);
    Ok digest

let get t digest =
  Metrics.time "dsvc_store_get_seconds" ~help:"Object_store.get latency"
  @@ fun () ->
  if not (Content_hash.is_valid digest) then
    Error (Printf.sprintf "invalid digest %S" digest)
  else begin
    let path = path_of t digest in
    if Sys.file_exists path then
      let* framed = Fsutil.read_file path in
      let* content = unframe framed in
      (* Always verify: one flipped bit in a delta blob would otherwise
         silently corrupt every version downstream of it. *)
      if Content_hash.hex content <> digest then begin
        record_verify "corrupt";
        Error
          (Printf.sprintf "object %s is corrupt (content fails its digest)"
             digest)
      end
      else begin
        record_verify "ok";
        record_get ~bytes:(String.length content);
        Ok content
      end
    else Error (Printf.sprintf "object %s not found" digest)
  end

let status t digest =
  if not (Content_hash.is_valid digest) then `Missing
  else
    let path = path_of t digest in
    if not (Sys.file_exists path) then `Missing
    else
      match Fsutil.read_file path with
      | Error _ -> `Corrupt
      | Ok framed -> (
          match unframe framed with
          | Error _ -> `Corrupt
          | Ok content ->
              if Content_hash.hex content = digest then `Ok else `Corrupt)

let mem t digest =
  Content_hash.is_valid digest && Sys.file_exists (path_of t digest)

let delete t digest =
  if mem t digest then try Sys.remove (path_of t digest) with Sys_error _ -> ()

let quarantine t digest =
  let src = path_of t digest in
  if not (Sys.file_exists src) then
    Error (Printf.sprintf "object %s not found" digest)
  else
    let* () = Fsutil.mkdir_p (quarantine_dir t) in
    let dst = Filename.concat (quarantine_dir t) digest in
    try
      Sys.rename src dst;
      Ok dst
    with Sys_error e -> Error e

let list_digests t =
  if not (Sys.file_exists t.dir) then []
  else
    Sys.readdir t.dir |> Array.to_list
    |> List.concat_map (fun prefix ->
           let sub = Filename.concat t.dir prefix in
           if Sys.is_directory sub && String.length prefix = 2 then
             Sys.readdir sub |> Array.to_list
             |> List.filter_map (fun rest ->
                    let digest = prefix ^ rest in
                    if Content_hash.is_valid digest then Some digest else None)
           else [])

let total_bytes t =
  List.fold_left
    (fun acc digest ->
      let path = path_of t digest in
      match (Unix.stat path).Unix.st_size with
      | size -> acc + size
      | exception Unix.Unix_error _ -> acc)
    0 (list_digests t)
