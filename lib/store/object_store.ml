(* [fs_dir] is set only for plain filesystem stores; [path_of] and
   the on-disk layout questions in tooling only make sense there. *)
type t = { backend : Backend.t; fs_dir : string option }

let ( let* ) = Result.bind

module Metrics = Versioning_obs.Metrics

(* Observability only: latencies, byte volumes and verification
   outcomes. No-ops while DSVC_OBS is off; values never influence
   store behaviour. *)
let record_put ~bytes =
  Metrics.counter "dsvc_store_put_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes written through Object_store.put"

let record_get ~bytes =
  Metrics.counter "dsvc_store_get_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes served by Object_store.get"

let record_verify result =
  Metrics.counter "dsvc_store_digest_verify_total"
    ~labels:[ ("result", result) ]
    ~help:"Digest verifications on object reads, by outcome"

let create ~dir =
  let* backend = Backend.fs ~dir in
  Ok { backend; fs_dir = Some dir }

let of_backend backend = { backend; fs_dir = None }
let memory () = of_backend (Backend.memory ())
let backend t = t.backend

let put t content =
  Metrics.time "dsvc_store_put_seconds"
    ~help:"Object_store.put latency (including the no-op dedup path)"
  @@ fun () ->
  let digest = Content_hash.hex content in
  if t.backend.Backend.mem ~digest then Ok digest
  else
    let* () = t.backend.Backend.put ~digest content in
    record_put ~bytes:(String.length content);
    Ok digest

let get t digest =
  Metrics.time "dsvc_store_get_seconds" ~help:"Object_store.get latency"
  @@ fun () ->
  if not (Content_hash.is_valid digest) then
    Error (Printf.sprintf "invalid digest %S" digest)
  else
    let* content = t.backend.Backend.get ~digest in
    (* Always verify: one flipped bit in a delta blob would otherwise
       silently corrupt every version downstream of it. *)
    if Content_hash.hex content <> digest then begin
      record_verify "corrupt";
      Error
        (Printf.sprintf "object %s is corrupt (content fails its digest)"
           digest)
    end
    else begin
      record_verify "ok";
      record_get ~bytes:(String.length content);
      Ok content
    end

let status t digest =
  if not (Content_hash.is_valid digest) then `Missing
  else if not (t.backend.Backend.mem ~digest) then `Missing
  else
    match t.backend.Backend.get ~digest with
    | Error _ -> `Corrupt
    | Ok content -> if Content_hash.hex content = digest then `Ok else `Corrupt

let mem t digest =
  Content_hash.is_valid digest && t.backend.Backend.mem ~digest

let delete t digest = if mem t digest then t.backend.Backend.delete ~digest
let quarantine t digest = t.backend.Backend.quarantine ~digest

let path_of t digest =
  match t.fs_dir with
  | Some dir -> Backend.fs_path ~dir digest
  | None ->
      (* Non-filesystem stores have no paths; return a debug label so
         existing tooling prints something identifiable rather than a
         bogus relative path. *)
      Printf.sprintf "<%s>/%s" t.backend.Backend.name digest

let list_digests t = List.map fst (t.backend.Backend.list ())
let total_bytes t = t.backend.Backend.total_bytes ()
