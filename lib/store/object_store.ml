(* [fs_dir] is set only for plain filesystem stores; [path_of] and
   the on-disk layout questions in tooling only make sense there. *)
type t = { backend : Backend.t; fs_dir : string option }

let ( let* ) = Result.bind

module Metrics = Versioning_obs.Metrics

(* Observability only: latencies, byte volumes and verification
   outcomes. No-ops while DSVC_OBS is off; values never influence
   store behaviour. *)
let record_put ~bytes =
  Metrics.counter "dsvc_store_put_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes written through Object_store.put"

let record_get ~bytes =
  Metrics.counter "dsvc_store_get_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes served by Object_store.get"

let record_verify result =
  Metrics.counter "dsvc_store_digest_verify_total"
    ~labels:[ ("result", result) ]
    ~help:"Digest verifications on object reads, by outcome"

let record_stream ~bytes =
  Metrics.counter "dsvc_store_stream_bytes_total" ~by:(float_of_int bytes)
    ~help:"Logical bytes served chunk-wise by Object_store.get_stream"

let create ~dir =
  let* backend = Backend.fs ~dir in
  Ok { backend; fs_dir = Some dir }

let of_backend backend = { backend; fs_dir = None }
let memory () = of_backend (Backend.memory ())
let backend t = t.backend

let put t content =
  Metrics.time "dsvc_store_put_seconds"
    ~help:"Object_store.put latency (including the no-op dedup path)"
  @@ fun () ->
  let digest = Content_hash.hex content in
  if t.backend.Backend.mem ~digest then Ok digest
  else
    let* () = t.backend.Backend.put ~digest content in
    record_put ~bytes:(String.length content);
    Ok digest

let get t digest =
  Metrics.time "dsvc_store_get_seconds" ~help:"Object_store.get latency"
  @@ fun () ->
  if not (Content_hash.is_valid digest) then
    Error (Printf.sprintf "invalid digest %S" digest)
  else
    let* content = t.backend.Backend.get ~digest in
    (* Always verify: one flipped bit in a delta blob would otherwise
       silently corrupt every version downstream of it. *)
    if Content_hash.hex content <> digest then begin
      record_verify "corrupt";
      Error
        (Printf.sprintf "object %s is corrupt (content fails its digest)"
           digest)
    end
    else begin
      record_verify "ok";
      record_get ~bytes:(String.length content);
      Ok content
    end

(* ---- streamed reads (zero-copy blob serving, DESIGN.md §13) ------

   A blob as a sequence of fixed-size chunks with the exact logical
   length known up front. Raw-framed ('R') filesystem blobs stream
   straight off disk, the digest verified incrementally — the final
   chunk is only released once the whole content checked out, so a
   corrupt blob cuts the body short instead of serving bad bytes as
   a complete response. Compressed ('C') frames and non-filesystem
   backends fall back to a verified full read served chunk-wise
   (still no response-sized concatenation on the HTTP side). *)

type blob_stream = {
  bs_length : int;
  bs_read : unit -> (string option, string) result;
  bs_close : unit -> unit;
}

let default_chunk_size = 64 * 1024

let stream_of_string ~chunk content =
  let pos = ref 0 in
  let len = String.length content in
  {
    bs_length = len;
    bs_read =
      (fun () ->
        if !pos >= len then Ok None
        else begin
          let n = min chunk (len - !pos) in
          let piece = String.sub content !pos n in
          pos := !pos + n;
          Ok (Some piece)
        end);
    bs_close = (fun () -> ());
  }

let stream_raw_file ~chunk path digest =
  let ic = open_in_bin path in
  let length = in_channel_length ic - 1 in
  seek_in ic 1;
  let st = Content_hash.init () in
  let remaining = ref length in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      close_in_noerr ic
    end
  in
  let read () =
    if !remaining <= 0 then begin
      close ();
      Ok None
    end
    else
      let n = min chunk !remaining in
      match really_input_string ic n with
      | piece ->
          Content_hash.feed st piece;
          remaining := !remaining - n;
          if !remaining > 0 then Ok (Some piece)
          else begin
            close ();
            if Content_hash.finish st <> digest then begin
              record_verify "corrupt";
              Error
                (Printf.sprintf
                   "object %s is corrupt (content fails its digest)" digest)
            end
            else begin
              record_verify "ok";
              record_get ~bytes:length;
              Ok (Some piece)
            end
          end
      | exception End_of_file ->
          close ();
          Error (Printf.sprintf "object %s is truncated on disk" digest)
  in
  { bs_length = length; bs_read = read; bs_close = close }

(* Count chunks as they are actually handed to the caller, so the
   stream-bytes counter reflects what went out on the wire (a stream
   abandoned after one chunk only counts that chunk). *)
let counted stream =
  {
    stream with
    bs_read =
      (fun () ->
        match stream.bs_read () with
        | Ok (Some piece) as r ->
            record_stream ~bytes:(String.length piece);
            r
        | r -> r);
  }

let get_stream ?(chunk = default_chunk_size) t digest =
  if not (Content_hash.is_valid digest) then
    Error (Printf.sprintf "invalid digest %S" digest)
  else
    let fallback () =
      let* content = get t digest in
      Ok (counted (stream_of_string ~chunk content))
    in
    match t.fs_dir with
    | None -> fallback ()
    | Some dir -> (
        let path = Backend.fs_path ~dir digest in
        match open_in_bin path with
        | exception Sys_error _ -> fallback ()
        | probe -> (
            (* Peek the framing tag: only raw frames stream off disk. *)
            let tag = try Some (input_char probe) with End_of_file -> None in
            close_in_noerr probe;
            match tag with
            | Some 'R' -> (
                match stream_raw_file ~chunk path digest with
                | s -> Ok (counted s)
                | exception Sys_error e -> Error e)
            | Some _ | None -> fallback ()))

let status t digest =
  if not (Content_hash.is_valid digest) then `Missing
  else if not (t.backend.Backend.mem ~digest) then `Missing
  else
    match t.backend.Backend.get ~digest with
    | Error _ -> `Corrupt
    | Ok content -> if Content_hash.hex content = digest then `Ok else `Corrupt

let mem t digest =
  Content_hash.is_valid digest && t.backend.Backend.mem ~digest

let delete t digest = if mem t digest then t.backend.Backend.delete ~digest
let quarantine t digest = t.backend.Backend.quarantine ~digest

let path_of t digest =
  match t.fs_dir with
  | Some dir -> Backend.fs_path ~dir digest
  | None ->
      (* Non-filesystem stores have no paths; return a debug label so
         existing tooling prints something identifiable rather than a
         bogus relative path. *)
      Printf.sprintf "<%s>/%s" t.backend.Backend.name digest

let list_digests t = List.map fst (t.backend.Backend.list ())
let total_bytes t = t.backend.Backend.total_bytes ()
