(** Multi-file dataset snapshots.

    Real datasets are directories (the paper's fork datasets
    concatenate a checkout's files "by traversing the directory
    structure in lexicographic order" — §5.1). This module gives that
    construction a faithful, reversible form: a canonical archive that
    serializes a set of files into one byte string so the whole
    delta/optimization pipeline applies unchanged, and that
    deserializes back to files on checkout.

    Canonical means deterministic: entries sorted by path, sizes
    explicit, so archives of equal trees are byte-equal (and thus
    deduplicate in the object store), and archives of similar trees
    line-diff compactly. The format is binary-safe: contents are
    length-prefixed, never scanned. *)

type entry = { path : string; content : string }

val pack : entry list -> (string, string) result
(** Canonical archive of the entries. [Error] on duplicate paths,
    empty paths, paths containing newlines, or absolute / escaping
    paths ([".."] segments). Entry order is irrelevant. *)

val unpack : string -> (entry list, string) result
(** Inverse of {!pack}; entries come back path-sorted. *)

val of_directory : string -> (entry list, string) result
(** Read a directory tree (regular files only), paths relative,
    lexicographic. *)

val to_directory : string -> entry list -> (unit, string) result
(** Write entries under a root directory, creating subdirectories.
    Existing files are overwritten. *)

val paths : string -> (string list, string) result
(** Just the file list of an archive, without materializing
    contents. *)
