module Fsutil = Versioning_util.Fsutil
module Faults = Versioning_util.Faults

type t = {
  name : string;
  put : digest:string -> string -> (unit, string) result;
  get : digest:string -> (string, string) result;
  mem : digest:string -> bool;
  delete : digest:string -> unit;
  list : unit -> (string * int) list;
  total_bytes : unit -> int;
  quarantine : digest:string -> (string, string) result;
  ping : unit -> (unit, string) result;
}

let ( let* ) = Result.bind

(* On-disk framing: blobs are stored raw ('R' + bytes) or
   LZ77-compressed ('C' + codestream), whichever is smaller — the
   digest always addresses the logical content. The in-memory backend
   uses the same framing so the two agree byte-for-byte on physical
   sizes and on what an injected [Corrupt] fault does to a blob. *)

let frame content =
  let compressed = Versioning_delta.Compress.lz77 content in
  if String.length compressed < String.length content then "C" ^ compressed
  else "R" ^ content

let unframe framed =
  if String.length framed = 0 then Error "empty object file"
  else
    match framed.[0] with
    | 'R' -> Ok (String.sub framed 1 (String.length framed - 1))
    | 'C' -> (
        try
          Ok
            (Versioning_delta.Compress.unlz77
               (String.sub framed 1 (String.length framed - 1)))
        with Invalid_argument e -> Error ("corrupt compressed object: " ^ e))
    | _ -> Error "unknown object framing"

(* Local filesystem: two-character fan-out like Git. *)

let fs_path ~dir digest =
  Filename.concat dir
    (Filename.concat (String.sub digest 0 2) (String.sub digest 2 30))

let fs ~dir =
  let* () = Fsutil.mkdir_p dir in
  let path_of digest = fs_path ~dir digest in
  let quarantine_dir = Filename.concat dir "quarantine" in
  let put ~digest content =
    let path = path_of digest in
    if Sys.file_exists path then Ok ()
    else
      Fsutil.write_file_atomic ~site:"object_store.write" path (frame content)
  in
  let get ~digest =
    let path = path_of digest in
    if Sys.file_exists path then
      let* framed = Fsutil.read_file path in
      unframe framed
    else Error (Printf.sprintf "object %s not found" digest)
  in
  let mem ~digest = Sys.file_exists (path_of digest) in
  let delete ~digest =
    if mem ~digest then
      try Sys.remove (path_of digest) with Sys_error _ -> ()
  in
  let list () =
    if not (Sys.file_exists dir) then []
    else
      Sys.readdir dir |> Array.to_list
      |> List.concat_map (fun prefix ->
             let sub = Filename.concat dir prefix in
             if Sys.is_directory sub && String.length prefix = 2 then
               Sys.readdir sub |> Array.to_list
               |> List.filter_map (fun rest ->
                      let digest = prefix ^ rest in
                      if not (Content_hash.is_valid digest) then None
                      else
                        match (Unix.stat (path_of digest)).Unix.st_size with
                        | size -> Some (digest, size)
                        | exception Unix.Unix_error _ -> None)
             else [])
  in
  let total_bytes () =
    List.fold_left (fun acc (_, size) -> acc + size) 0 (list ())
  in
  let quarantine ~digest =
    let src = path_of digest in
    if not (Sys.file_exists src) then
      Error (Printf.sprintf "object %s not found" digest)
    else
      let* () = Fsutil.mkdir_p quarantine_dir in
      let dst = Filename.concat quarantine_dir digest in
      try
        Sys.rename src dst;
        Ok dst
      with Sys_error e -> Error e
  in
  let ping () =
    if Sys.file_exists dir && Sys.is_directory dir then Ok ()
    else Error (Printf.sprintf "store directory %s unreachable" dir)
  in
  Ok
    {
      name = "fs:" ^ dir;
      put;
      get;
      mem;
      delete;
      list;
      total_bytes;
      quarantine;
      ping;
    }

(* In-memory: a hashtable of framed blobs. Consults the same
   ["object_store.write"] fault site as the filesystem backend so the
   QCheck equivalence property can exercise both under identical
   injected failures. *)

let memory () =
  let blobs : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let quarantined : (string, string) Hashtbl.t = Hashtbl.create 4 in
  let put ~digest content =
    if Hashtbl.mem blobs digest then Ok ()
    else
      match Faults.on_write "object_store.write" (frame content) with
      | `Fail (_, msg) -> Error msg
      | `Write (framed, crash) ->
          Hashtbl.replace blobs digest framed;
          if crash then Faults.crash "object_store.write" else Ok ()
  in
  let get ~digest =
    match Hashtbl.find_opt blobs digest with
    | Some framed -> unframe framed
    | None -> Error (Printf.sprintf "object %s not found" digest)
  in
  let mem ~digest = Hashtbl.mem blobs digest in
  let delete ~digest = Hashtbl.remove blobs digest in
  let list () =
    Hashtbl.fold (fun d framed acc -> (d, String.length framed) :: acc) blobs []
    |> List.sort compare
  in
  let total_bytes () =
    Hashtbl.fold (fun _ framed acc -> acc + String.length framed) blobs 0
  in
  let quarantine ~digest =
    match Hashtbl.find_opt blobs digest with
    | None -> Error (Printf.sprintf "object %s not found" digest)
    | Some framed ->
        Hashtbl.remove blobs digest;
        Hashtbl.replace quarantined digest framed;
        Ok ("memory:quarantine/" ^ digest)
  in
  let ping () = Ok () in
  {
    name = "memory";
    put;
    get;
    mem;
    delete;
    list;
    total_bytes;
    quarantine;
    ping;
  }
