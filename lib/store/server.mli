(** The prototype's HTTP interface (§5: "users interact with the
    version management system in a client-server model over HTTP").

    Routes (all responses [text/plain]):

    - [GET /versions] — one line per commit: [id parents message]
    - [GET /checkout/<id-or-name>] — the version's bytes
    - [POST /commit?message=…&parents=1,2] — body is the content;
      responds [201] with the new id
    - [GET /stats] — the {!Repo.stats} fields, one per line
    - [GET /branches], [POST /branch/<name>?at=<id>],
      [POST /switch/<name>]
    - [GET /tags], [POST /tag/<name>?at=<id>]
    - [GET /diff/<a>/<b>] — encoded line delta
    - [POST /optimize?strategy=<s>] — [min-storage], [min-recreation],
      [balanced=F], [bounded-max=F], [git], [svn]
    - [GET /verify]
    - [GET /trace/<request-id>] — JSON span summary of a recently
      handled request (bounded in-memory table; [404] once evicted)
    - [GET /flight] — the {!Versioning_obs.Flight} ring as JSON
    - [GET /health] — liveness/cluster view: store reachability,
      journal state, metadata generation, build/process provenance
      ([build]/[ocaml]/[uptime_s] — the same stamps as the metrics
      meta block and the bench record), and (cluster mode) ring epoch,
      replica count, pending hints and per-peer up/down/probe
    - [GET /metrics/cluster] — cluster-wide Prometheus scrape: this
      node's registry plus a live fan-out to every peer's
      [GET /metrics], each sample re-labelled with [peer="<name>"]
      (escaped per the exposition spec), one
      [dsvc_cluster_scrape_up{peer=…}] gauge per node, and a
      [# peer <name> unreachable: …] annotation for each peer that
      could not be scraped (partial results, never a hard failure)
    - [GET /timeseries] — the sampled metric history (DESIGN.md §16):
      without parameters, the sorted series names one per line; with
      [?metric=…&since=<seconds-back>], one
      [time count avg min max last] line per bucket from the finest
      downsampling tier that covers the span
    - [GET /alerts] — one line per alert rule:
      [name state since=… value=…] plus a [suppressed="…"] annotation
      for rules muted via [DSVC_ALERT_SUPPRESS]

    Cluster-mode routes (DESIGN.md §12). The [/blob] family always
    serves the node's {e local} shard — never the replicated view —
    so peer-to-peer replication cannot recurse:

    - [GET /blob/<digest>], [GET /blob/<digest>/stat],
      [POST /blob/<digest>] (body must hash to the digest; [409]
      otherwise), [POST /blob/<digest>/quarantine],
      [DELETE /blob/<digest>], [GET /blobs]
    - [GET /meta] / [POST /meta/sync] — metadata replication;
      adoption is generation-gated and idempotent
    - [POST /anti-entropy] — push metadata to peers, then restore
      full replication of every referenced digest ([500] with the
      failures listed if any digest stays under-replicated)

    {!handle} is the pure request router (unit-testable without
    sockets); {!serve} runs the accept loop.

    Tracing (DESIGN.md §11): {!handle_safe} extracts the client's
    [traceparent] / [X-Dsvc-Request-Id] headers into an ambient
    {!Versioning_obs.Context} (minting a fresh one when absent), runs
    the handler under a [server.request] span parented on the client's
    span, emits one Info-level access-log line per request
    ([meth path -> status (ms)], stamped with the request/trace id by
    the {!Versioning_obs.Logctx} reporter), and echoes the request id
    back as an [X-Dsvc-Request-Id] response header.

    Error statuses: resolution failures (unknown version, tag, branch)
    are [404]; conflicts with repository state (duplicate names, bad
    parents) are [409]; a handler that raises yields [500]. *)

type cluster = {
  local_store : Object_store.t;
      (** this node's shard — what [/blob] serves *)
  replicated : Replicated.t;  (** the quorum view the repo runs on *)
  peer_clients : (string * Client.t) list;
      (** typed peer handles for metadata pushes *)
}
(** Cluster wiring for [dsvc serve --peers]; absent means the
    original single-node behaviour, bit for bit. *)

val handle : ?cluster:cluster -> Repo.t -> Http.request -> Http.response

val handle_safe : ?cluster:cluster -> Repo.t -> Http.request -> Http.response
(** {!handle}, but a raising handler becomes a [500] response instead
    of an exception — what {!serve} actually runs per request. In
    cluster mode, a successful mutating request is followed by a
    metadata push to every usable peer (inside the request's trace). *)

val serve :
  ?cluster:cluster ->
  Repo.t ->
  port:int ->
  ?host:string ->
  ?max_requests:int ->
  ?request_timeout:float ->
  ?idle_timeout:float ->
  ?max_connections:int ->
  ?workers:int ->
  ?backend:string ->
  ?on_listen:(int -> unit) ->
  unit ->
  (unit, string) result
(** Event-driven serving on [host] (default 127.0.0.1): one loop
    thread owns every socket ({!Versioning_util.Evloop} — epoll where
    available), connections persist across requests (HTTP/1.1
    keep-alive, pipelining up to a bounded depth), and blob responses
    stream from disk in fixed-size chunks through vectored writes.
    Parsed requests execute on a small worker pool so a slow handler
    never blocks the loop; [workers] (default [DSVC_SERVER_WORKERS] or
    1 — the ambient trace context is domain-local, so more workers may
    interleave trace ids) — non-observability routes additionally
    serialize on an internal repo lock.

    [max_requests] stops the server after that many responses have
    been enqueued (tests), draining open connections briefly. The
    bound port is printed to stdout once listening, and [on_listen]
    (if any) receives it — useful with [port:0] for an ephemeral port.

    Overload and stalls: at most [max_connections] ([DSVC_MAX_CONNS]
    or 1024) connections are served concurrently — beyond that new
    connections get an immediate [503]; a connection idle mid-request
    for [request_timeout] seconds (default 30) gets a [408] and is
    closed; one idle {e between} requests for [idle_timeout]
    ([DSVC_IDLE_TIMEOUT] or 5) seconds is closed silently.

    [backend] pins the reactor poller ("epoll", "poll", "select");
    unset, [DSVC_EVLOOP] / auto-detection decide as documented in
    {!Versioning_util.Evloop.create}. The backend-matrix tests use it
    to assert the three backends agree on observable behavior.

    SIGINT/SIGTERM request a graceful shutdown (in-flight work
    finishes, the listening socket closes, previous signal handlers
    are restored, and [serve] returns [Ok ()]). A signal-initiated
    shutdown also dumps the flight recorder to
    {!Versioning_obs.Flight.default_path} when it holds any events.

    Sampling (DESIGN.md §16): unless [DSVC_OBS] is explicitly off, a
    reactor timer ticks a {!Versioning_obs.Sampler} every
    [DSVC_TS_STEP] seconds (default 5) into the repo's time-series
    ring and evaluates the alert rules; peer probing and periodic ring
    persistence run on the executor, never on the loop thread. With
    [DSVC_OBS=0] the timer is never armed and [.dsvc/timeseries] is
    never written. *)

val parse_strategy : string -> (Repo.strategy, string) result
(** The [strategy] query values, shared with the CLI. *)

val metrics_json_with_meta : unit -> string
(** The {!Versioning_obs.Metrics.to_json} document with a
    [{"meta":{"git_rev":…,"ocaml":…,"uptime_s":…}}] block spliced in
    front of the ["metrics"] array — what [GET /metrics?format=json]
    serves, shared with [dsvc metrics --json] so local and remote
    snapshots carry the same provenance stamps. *)
