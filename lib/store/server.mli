(** The prototype's HTTP interface (§5: "users interact with the
    version management system in a client-server model over HTTP").

    Routes (all responses [text/plain]):

    - [GET /versions] — one line per commit: [id parents message]
    - [GET /checkout/<id-or-name>] — the version's bytes
    - [POST /commit?message=…&parents=1,2] — body is the content;
      responds [201] with the new id
    - [GET /stats] — the {!Repo.stats} fields, one per line
    - [GET /branches], [POST /branch/<name>?at=<id>],
      [POST /switch/<name>]
    - [GET /tags], [POST /tag/<name>?at=<id>]
    - [GET /diff/<a>/<b>] — encoded line delta
    - [POST /optimize?strategy=<s>] — [min-storage], [min-recreation],
      [balanced=F], [bounded-max=F], [git], [svn]
    - [GET /verify]

    {!handle} is the pure request router (unit-testable without
    sockets); {!serve} runs the accept loop. *)

val handle : Repo.t -> Http.request -> Http.response

val serve :
  Repo.t ->
  port:int ->
  ?host:string ->
  ?max_requests:int ->
  unit ->
  (unit, string) result
(** Serve sequentially on [host] (default 127.0.0.1). [max_requests]
    stops the loop after that many connections (tests); default runs
    forever. The bound port is printed to stdout once listening. *)

val parse_strategy : string -> (Repo.strategy, string) result
(** The [strategy] query values, shared with the CLI. *)
