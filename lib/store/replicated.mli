(** Sharded, replicated blob store: N-way placement on a consistent
    hash ring with sloppy write quorums, hinted handoff, fan-out reads
    with per-replica digest verification, and read-repair.

    Placement is computed locally from the {!Ring} (every node with
    the same member list agrees; compare [ring_epoch] via
    [GET /health]). Each digest has [replicas] owners — the first
    distinct members clockwise from its ring position.

    {b Writes} go to every owner; the put succeeds when a majority
    ([replicas/2 + 1]) stored it. Owners that are down (per the
    {!Detector}) or fail are covered by {e hinted handoff}: the copy
    is parked on the next usable non-owner along the ring and a hint
    records the debt, delivered when the owner returns. A handoff copy
    counts toward the quorum — availability is preserved at the cost
    of temporary placement sloppiness, exactly the Dynamo trade.

    {b Reads} walk the digest's preference order, verify each
    candidate copy against its digest (a stale or corrupt replica must
    not win for being first), and {e read-repair}: owners observed
    missing or corrupt before the good copy turned up are rewritten
    from it inline. The happy path (healthy primary) costs no extra
    probes.

    {b Anti-entropy} ({!anti_entropy}) is the rejoin path: deliver
    parked hints, then for every digest the repo references ensure
    all owners hold a verified copy. After a SIGKILL'd node restarts,
    one sweep restores full replication.

    Everything is observable: per-peer health gauge
    ([dsvc_cluster_peer_up]), quorum outcomes
    ([dsvc_cluster_quorum_total]), failover, handoff, and read-repair
    counters, plus [cluster.put]/[cluster.get] spans; warnings land in
    the flight ring. DESIGN.md §12 states the failure model. *)

type t

type report = { checked : int; repaired : int; failed : string list }
(** Anti-entropy summary: digests examined, replica copies written
    (including delivered hints), and unrepairable digests with
    reasons. *)

val create :
  ?replicas:int ->
  ?vnodes:int ->
  ?detector:Detector.t ->
  ?now:(unit -> float) ->
  self:string ->
  self_backend:Backend.t ->
  peers:(string * Backend.t) list ->
  unit ->
  t
(** A cluster view from this node's perspective. [self]/[peers] names
    must match what every other node uses (host:port by convention) or
    ring epochs diverge. [replicas] defaults to 2 and is clamped to
    the member count. The local backend is always considered up.
    [now] (default [Unix.gettimeofday]) timestamps parked hints and is
    read by {!export_lag_metrics} — injectable so lag-age tests are
    deterministic. *)

val backend : t -> Backend.t
(** The quorum view as a plain {!Backend.t} — plug into
    {!Object_store.of_backend} and the repo above it cannot tell it is
    clustered. *)

val put : t -> digest:string -> string -> (unit, string) result
val get : t -> digest:string -> (string, string) result
val mem : t -> digest:string -> bool
val delete : t -> digest:string -> unit
val quarantine : t -> digest:string -> (string, string) result

val list : t -> (string * int) list
(** Union over usable members (max physical size per digest). *)

val total_bytes : t -> int

val anti_entropy : t -> digests:string list -> report
(** {!probe} every peer, deliver hints, then restore full replication
    for [digests] (the repo's referenced digest set). A copy that
    fails digest verification on its owner is replaced, not skipped. *)

val probe : t -> unit
(** Ping every peer (even [`Down] ones) and feed the detector — the
    immediate-rejoin path: {!anti_entropy} runs this first so a
    restarted node is seen as up without waiting out its probation. *)

val deliver_hints : t -> int
(** Deliver parked handoff copies to owners that came back; returns
    how many were delivered. *)

val pending_hints : t -> int

val export_lag_metrics : t -> unit
(** Publish replication-lag gauges from the hint ledger:
    [dsvc_cluster_hint_queue_depth{owner}] and
    [dsvc_cluster_hint_oldest_age_seconds{owner}]. Owners whose queue
    has drained keep reporting 0 so the recovery is visible. Called
    periodically by the server's sampler plumbing (executor side —
    this reads the injected clock). *)

val self : t -> string
val members : t -> string list
val replicas : t -> int
val quorum : t -> int
val ring_epoch : t -> string

val peers : t -> (string * [ `Up | `Down | `Probe ] * string) list
(** Peer health from the failure detector (name, state, last error). *)

val usable : t -> string -> bool
