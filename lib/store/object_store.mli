(** Content-addressed blob storage on disk.

    Blobs live under [<dir>/ab/cdef…] (two-character fan-out like
    Git). Writing is idempotent — equal content maps to an equal
    digest and is stored once, which is where whole-version
    deduplication (identical intermediate results, §1) comes for
    free. *)

type t

val create : dir:string -> (t, string) result
(** Open (creating directories as needed) an object store rooted at
    [dir]. *)

val put : t -> string -> (string, string) result
(** [put store content] writes the blob and returns its digest.
    Writing is atomic (temp file + rename). Blobs are transparently
    LZ77-compressed on disk when that is smaller (like git's zlib
    packing); the digest always addresses the logical content. *)

val get : t -> string -> (string, string) result
(** Fetch a blob by digest. *)

val mem : t -> string -> bool

val delete : t -> string -> unit
(** Remove a blob if present (used by repack garbage collection). *)

val list_digests : t -> string list
(** All stored digests. *)

val total_bytes : t -> int
(** Sum of on-disk blob sizes (after framing/compression) — the
    store's physical storage cost. *)
