(** Content-addressed blob storage over a pluggable {!Backend}.

    This layer owns integrity: it computes digests on {!put},
    re-verifies content against its digest on every {!get}, and keeps
    the store metrics — while the backend underneath decides where
    bytes physically live (local filesystem, memory, a remote peer,
    or a {!Replicated} quorum of all three).

    The default {!create} backend keeps the original on-disk layout:
    blobs under [<dir>/ab/cdef…] (two-character fan-out like Git).
    Writing is idempotent — equal content maps to an equal digest and
    is stored once, which is where whole-version deduplication
    (identical intermediate results, §1) comes for free.

    Durability (filesystem backend): writes go through
    [Fsutil.write_file_atomic] (temp file, fsync, rename), and every
    {!get} re-verifies the content against its digest, so on-disk
    corruption surfaces as [Error] at the first read instead of
    silently corrupting every version downstream of a damaged
    delta. *)

type t

val create : dir:string -> (t, string) result
(** Open (creating directories as needed) an object store rooted at
    [dir] — a {!Backend.fs} backend. *)

val of_backend : Backend.t -> t
(** Wrap any backend (remote peer, replicated quorum, …). *)

val memory : unit -> t
(** A fresh private in-memory store (tests, scratch work). *)

val backend : t -> Backend.t
(** The underlying backend (for composing into {!Replicated}). *)

val put : t -> string -> (string, string) result
(** [put store content] writes the blob and returns its digest.
    Writing is atomic and fsynced (temp file + rename); a failed
    write cleans up its temp file. Blobs are transparently
    LZ77-compressed on disk when that is smaller (like git's zlib
    packing); the digest always addresses the logical content. *)

val get : t -> string -> (string, string) result
(** Fetch a blob by digest. The content is verified against the
    digest on every read; corrupt blobs return [Error]. *)

(** A blob as a chunk sequence with its exact logical length known up
    front — what zero-copy HTTP serving consumes (DESIGN.md §13). *)
type blob_stream = {
  bs_length : int;
  bs_read : unit -> (string option, string) result;
      (** next chunk, [None] at end-of-stream *)
  bs_close : unit -> unit;  (** release the descriptor early *)
}

val get_stream : ?chunk:int -> t -> string -> (blob_stream, string) result
(** Open a blob for chunked reading ([chunk] defaults to 64 KiB).
    Raw-framed filesystem blobs stream straight off disk with the
    digest verified incrementally: the final chunk is withheld (an
    [Error] instead) if the content fails its digest, so a corrupt
    blob yields a short body rather than a complete-looking bad one.
    Compressed frames and non-filesystem backends fall back to a
    verified {!get} served in chunks. *)

val status : t -> string -> [ `Ok | `Missing | `Corrupt ]
(** Non-destructively classify a digest: present and digest-valid,
    absent, or present but unreadable / failing its digest. *)

val mem : t -> string -> bool

val delete : t -> string -> unit
(** Remove a blob if present (used by repack garbage collection). *)

val quarantine : t -> string -> (string, string) result
(** Move a (typically corrupt) blob out of the addressable store into
    [<dir>/quarantine/<digest>] for post-mortem inspection, and return
    the destination path. After quarantining, a fresh {!put} of the
    true content re-creates a good copy. *)

val path_of : t -> string -> string
(** On-disk path a digest maps to (for tooling and tests). Only
    meaningful for filesystem-backed stores; other backends return a
    ["<backend>/digest"] debug label. *)

val list_digests : t -> string list
(** All stored digests (the quarantine area is not included). *)

val total_bytes : t -> int
(** Sum of on-disk blob sizes (after framing/compression) — the
    store's physical storage cost. *)
