type t = {
  members : string list;  (* sorted, distinct *)
  points : (string * string) array;  (* (position, member), sorted *)
}

(* Ring positions are content hashes of "member#vnode", truncated to
   one 64-bit lane (16 hex chars). Hex strings compare like the
   unsigned integers they encode, so plain string order is ring
   order. Blob positions re-hash the digest so placement is
   decorrelated from the digest's own value distribution.

   The FNV lane alone is not uniform enough here: for the short,
   near-identical "member#i" inputs its high bits barely mix, the
   vnode points bunch up, and measured primary ownership skewed as
   far as 9%/53%/38% across three members. A splitmix64 finalizer
   scatters the points properly (±a few percent). *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let position_of s =
  let lane = Int64.of_string ("0x" ^ String.sub (Content_hash.hex s) 0 16) in
  Printf.sprintf "%016Lx" (mix64 lane)

let create ?(vnodes = 64) ~members () =
  let members = List.sort_uniq compare members in
  let points =
    List.concat_map
      (fun m ->
        List.init vnodes (fun i ->
            (position_of (m ^ "#" ^ string_of_int i), m)))
      members
    |> List.sort compare |> Array.of_list
  in
  { members; points }

let members t = t.members

let epoch t =
  (* A fingerprint of the member set: two nodes agree on placement iff
     their epochs match, which /health exposes for operators. *)
  String.sub (Content_hash.hex (String.concat "," t.members)) 0 16

(* First point clockwise from [pos] (binary search, wrapping). *)
let start_index t pos =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < pos then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let sequence t digest =
  let n = Array.length t.points in
  if n = 0 then []
  else begin
    let start = start_index t (position_of digest) in
    let seen = Hashtbl.create 8 in
    let order = ref [] in
    for i = 0 to n - 1 do
      let m = snd t.points.((start + i) mod n) in
      if not (Hashtbl.mem seen m) then begin
        Hashtbl.add seen m ();
        order := m :: !order
      end
    done;
    List.rev !order
  end

let owners t digest ~n =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take (max 0 n) (sequence t digest)
