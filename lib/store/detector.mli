(** Per-peer failure detector: consecutive-error threshold with
    exponential probation backoff.

    Callers report every outcome of talking to a peer ({!ok} /
    {!fail}); the detector aggregates them into one of three states:

    - [`Up] — fewer consecutive failures than the threshold; use
      freely.
    - [`Down] — threshold reached and the probation deadline has not
      passed; skip the peer entirely (this is what makes failover
      fast: no timeout is paid per request on a dead node).
    - [`Probe] — probation expired; the peer may be tried again (the
      natural probe is the next real operation, or [Client.ping]).
      Another failure re-enters probation with a doubled cool-off,
      capped; one success resets everything.

    The clock is injectable so tests drive probation transitions
    deterministically without sleeping. All entry points are
    mutex-guarded — server threads and the chaos harness share one
    detector. State changes feed the [dsvc_cluster_peer_up] gauge and
    [dsvc_cluster_peer_down_total] counter. *)

type t

val create :
  ?threshold:int ->
  ?probation_base:float ->
  ?probation_max:float ->
  ?now:(unit -> float) ->
  unit ->
  t
(** Defaults: 3 consecutive failures trip probation, first probation
    0.5 s, doubling per relapse up to 30 s, wall clock. *)

val ok : t -> name:string -> unit
(** A successful exchange with the peer: full reset to [`Up]. *)

val fail : t -> name:string -> string -> unit
(** A failed exchange, with the error message (kept for {!report}). *)

val state : t -> name:string -> [ `Up | `Down | `Probe ]

val usable : t -> name:string -> bool
(** [`Up] or [`Probe] — whether a request should be attempted. *)

val report : t -> (string * [ `Up | `Down | `Probe ] * string) list
(** All known peers with state and last error, sorted by name (for
    [GET /health]). *)
