(* Compatibility re-export: the single write path lives in
   [Versioning_util.Fsutil] so the core tier can use it without
   depending on the store. See [lib/util/fsutil.mli]. *)
include Versioning_util.Fsutil
