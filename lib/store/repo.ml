module Line_diff = Versioning_delta.Line_diff
module Aux_graph = Versioning_core.Aux_graph
module Storage_graph = Versioning_core.Storage_graph

let ( let* ) = Result.bind

type commit_info = {
  id : int;
  parents : int list;
  message : string;
  timestamp : float;
}

type stored = Full of string | Delta_from of int * string

type t = {
  root : string;
  store : Object_store.t;
  mutable commits : commit_info list;  (* newest first *)
  mutable stored : (int, stored) Hashtbl.t;
  mutable branches : (string * int) list;
  mutable tag_list : (string * int) list;
  mutable head_branch : string;
  mutable next_id : int;
}

type stats = {
  n_versions : int;
  storage_bytes : int;
  n_full : int;
  n_delta : int;
  max_chain : int;
  sum_recreation_bytes : float;
  max_recreation_bytes : float;
}

type strategy =
  | Min_storage
  | Min_recreation
  | Budgeted_sum of float
  | Bounded_max of float
  | Git_window of int * int
  | Svn_skip

let meta_dir path = Filename.concat path ".dsvc"
let meta_file path = Filename.concat (meta_dir path) "meta"
let objects_dir path = Filename.concat (meta_dir path) "objects"

let root t = t.root

(* ---- metadata persistence ---- *)

let save t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "dsvc 1\n";
  Buffer.add_string buf (Printf.sprintf "head %s\n" t.head_branch);
  Buffer.add_string buf (Printf.sprintf "next %d\n" t.next_id);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "branch %s %d\n" name v))
    t.branches;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "tag %s %d\n" name v))
    t.tag_list;
  List.iter
    (fun c ->
      let parents =
        match c.parents with
        | [] -> "-"
        | ps -> String.concat "," (List.map string_of_int ps)
      in
      Buffer.add_string buf
        (Printf.sprintf "version %d %.6f %s %s\n" c.id c.timestamp parents
           (String.escaped c.message)))
    t.commits;
  Hashtbl.iter
    (fun id s ->
      match s with
      | Full digest ->
          Buffer.add_string buf (Printf.sprintf "stored %d full %s\n" id digest)
      | Delta_from (p, digest) ->
          Buffer.add_string buf
            (Printf.sprintf "stored %d delta %d %s\n" id p digest))
    t.stored;
  try
    let tmp = meta_file t.root ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Buffer.output_buffer oc buf);
    Sys.rename tmp (meta_file t.root);
    Ok ()
  with Sys_error e -> Error e

let load path store =
  try
    let ic = open_in_bin (meta_file path) in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let t =
      {
        root = path;
        store;
        commits = [];
        stored = Hashtbl.create 64;
        branches = [];
        tag_list = [];
        head_branch = "main";
        next_id = 1;
      }
    in
    let fail msg = Error (Printf.sprintf "corrupt repository metadata: %s" msg) in
    let parse_line line =
      if line = "" then Ok ()
      else
        match String.split_on_char ' ' line with
        | "dsvc" :: _ -> Ok ()
        | [ "head"; name ] ->
            t.head_branch <- name;
            Ok ()
        | [ "next"; n ] -> (
            match int_of_string_opt n with
            | Some n ->
                t.next_id <- n;
                Ok ()
            | None -> fail "bad next id")
        | [ "branch"; name; v ] -> (
            match int_of_string_opt v with
            | Some v ->
                t.branches <- t.branches @ [ (name, v) ];
                Ok ()
            | None -> fail "bad branch head")
        | [ "tag"; name; v ] -> (
            match int_of_string_opt v with
            | Some v ->
                t.tag_list <- t.tag_list @ [ (name, v) ];
                Ok ()
            | None -> fail "bad tag target")
        | "version" :: id :: ts :: parents :: msg_parts -> (
            match (int_of_string_opt id, float_of_string_opt ts) with
            | Some id, Some timestamp -> (
                let message =
                  try Scanf.unescaped (String.concat " " msg_parts)
                  with Scanf.Scan_failure _ -> String.concat " " msg_parts
                in
                match
                  if parents = "-" then Ok []
                  else
                    String.split_on_char ',' parents
                    |> List.map int_of_string_opt
                    |> List.fold_left
                         (fun acc p ->
                           match (acc, p) with
                           | Ok acc, Some p -> Ok (acc @ [ p ])
                           | _ -> Error ())
                         (Ok [])
                with
                | Ok parents ->
                    t.commits <-
                      t.commits @ [ { id; parents; message; timestamp } ];
                    Ok ()
                | Error () -> fail "bad parent list")
            | _ -> fail "bad version line")
        | [ "stored"; id; "full"; digest ] -> (
            match int_of_string_opt id with
            | Some id ->
                Hashtbl.replace t.stored id (Full digest);
                Ok ()
            | None -> fail "bad stored line")
        | [ "stored"; id; "delta"; p; digest ] -> (
            match (int_of_string_opt id, int_of_string_opt p) with
            | Some id, Some p ->
                Hashtbl.replace t.stored id (Delta_from (p, digest));
                Ok ()
            | _ -> fail "bad stored line")
        | _ -> fail ("unknown line: " ^ line)
    in
    let rec go = function
      | [] -> Ok ()
      | l :: tl -> (
          match parse_line l with Ok () -> go tl | Error _ as e -> e)
    in
    let* () = go (String.split_on_char '\n' content) in
    (* Newest first. *)
    t.commits <-
      List.sort (fun a b -> compare b.id a.id) t.commits;
    Ok t
  with Sys_error e -> Error e

let init ~path =
  if Sys.file_exists (meta_file path) then
    Error (Printf.sprintf "repository already exists at %s" path)
  else
    let* store = Object_store.create ~dir:(objects_dir path) in
    let t =
      {
        root = path;
        store;
        commits = [];
        stored = Hashtbl.create 64;
        branches = [ ("main", 0) ];
        tag_list = [];
        head_branch = "main";
        next_id = 1;
      }
    in
    let* () = save t in
    Ok t

let open_repo ~path =
  if not (Sys.file_exists (meta_file path)) then
    Error (Printf.sprintf "no repository at %s" path)
  else
    let* store = Object_store.create ~dir:(objects_dir path) in
    load path store

(* ---- retrieval ---- *)

let checkout t version =
  (* Walk back to a full object, then replay deltas forward. *)
  let rec chain v acc =
    match Hashtbl.find_opt t.stored v with
    | None -> Error (Printf.sprintf "version %d is not stored" v)
    | Some (Full digest) -> Ok (digest, acc)
    | Some (Delta_from (p, digest)) ->
        if List.length acc > Hashtbl.length t.stored then
          Error "delta chain contains a cycle"
        else chain p (digest :: acc)
  in
  let* base_digest, deltas = chain version [] in
  let* base = Object_store.get t.store base_digest in
  List.fold_left
    (fun acc digest ->
      let* content = acc in
      let* encoded = Object_store.get t.store digest in
      match Line_diff.decode encoded with
      | d -> (
          try Ok (Line_diff.apply content d)
          with Invalid_argument e -> Error e)
      | exception Invalid_argument e -> Error e)
    (Ok base) deltas

(* ---- commits & branches ---- *)

let head t = List.assoc_opt t.head_branch t.branches |> Option.fold ~none:None ~some:(fun v -> if v = 0 then None else Some v)

let current_branch t = t.head_branch
let branches t = List.filter (fun (_, v) -> v <> 0) t.branches
let log t = t.commits
let commit_info t id = List.find_opt (fun c -> c.id = id) t.commits

let store_full t content =
  let* digest = Object_store.put t.store content in
  Ok (Full digest)

let commit t ?(message = "") ?parents content =
  let parents =
    match parents with
    | Some ps -> ps
    | None -> ( match head t with None -> [] | Some h -> [ h ])
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if Hashtbl.mem t.stored p then Ok ()
        else Error (Printf.sprintf "unknown parent version %d" p))
      (Ok ()) parents
  in
  let id = t.next_id in
  let* stored =
    match parents with
    | [] -> store_full t content
    | p :: _ ->
        let* parent_content = checkout t p in
        let delta = Line_diff.diff parent_content content in
        let encoded = Line_diff.encode delta in
        if String.length encoded < String.length content then
          let* digest = Object_store.put t.store encoded in
          Ok (Delta_from (p, digest))
        else store_full t content
  in
  t.next_id <- id + 1;
  Hashtbl.replace t.stored id stored;
  t.commits <-
    { id; parents; message; timestamp = Unix.gettimeofday () } :: t.commits;
  t.branches <-
    (t.head_branch, id)
    :: List.remove_assoc t.head_branch t.branches;
  let* () = save t in
  Ok id

let create_branch t name ?at () =
  if List.mem_assoc name t.branches then
    Error (Printf.sprintf "branch %s already exists" name)
  else begin
    let target =
      match at with Some v -> Some v | None -> head t
    in
    match target with
    | None -> Error "cannot branch from an empty repository"
    | Some v ->
        if not (Hashtbl.mem t.stored v) then
          Error (Printf.sprintf "unknown version %d" v)
        else begin
          t.branches <- (name, v) :: t.branches;
          t.head_branch <- name;
          save t
        end
  end

let switch t name =
  if List.mem_assoc name t.branches then begin
    t.head_branch <- name;
    save t
  end
  else Error (Printf.sprintf "no branch named %s" name)

let tag t name ?at () =
  if List.mem_assoc name t.tag_list then
    Error (Printf.sprintf "tag %s already exists" name)
  else
    match (match at with Some v -> Some v | None -> head t) with
    | None -> Error "cannot tag in an empty repository"
    | Some v ->
        if not (Hashtbl.mem t.stored v) then
          Error (Printf.sprintf "unknown version %d" v)
        else begin
          t.tag_list <- (name, v) :: t.tag_list;
          save t
        end

let tags t = List.sort compare t.tag_list

let resolve t name =
  match List.assoc_opt name t.tag_list with
  | Some v -> Some v
  | None -> (
      match List.assoc_opt name t.branches with
      | Some v when v <> 0 -> Some v
      | _ -> (
          match int_of_string_opt name with
          | Some v when Hashtbl.mem t.stored v -> Some v
          | _ -> None))

let diff t a b =
  let* ca = checkout t a in
  let* cb = checkout t b in
  Ok (Line_diff.encode (Line_diff.diff ca cb))

let verify t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* every referenced object exists and matches its digest *)
  Hashtbl.iter
    (fun v s ->
      let digest = match s with Full d | Delta_from (_, d) -> d in
      match Object_store.get t.store digest with
      | Error e -> note "version %d: object unreadable (%s)" v e
      | Ok content ->
          if Content_hash.hex content <> digest then
            note "version %d: object %s fails its digest" v digest)
    t.stored;
  (* every version reconstructs *)
  Hashtbl.iter
    (fun v _ ->
      match checkout t v with
      | Ok _ -> ()
      | Error e -> note "version %d: checkout failed (%s)" v e)
    t.stored;
  (* commit parents all exist *)
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem t.stored p) then
            note "version %d: missing parent %d" c.id p)
        c.parents)
    t.commits;
  if !problems = [] then Ok () else Error (List.rev !problems)

let import_versions t entries =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (message, parents, content) :: tl -> (
        (* inline commit without per-version save *)
        let* () =
          List.fold_left
            (fun acc p ->
              let* () = acc in
              if Hashtbl.mem t.stored p then Ok ()
              else Error (Printf.sprintf "unknown parent version %d" p))
            (Ok ()) parents
        in
        let id = t.next_id in
        let* stored =
          match parents with
          | [] -> store_full t content
          | p :: _ ->
              let* parent_content = checkout t p in
              let delta = Line_diff.diff parent_content content in
              let encoded = Line_diff.encode delta in
              if String.length encoded < String.length content then
                let* digest = Object_store.put t.store encoded in
                Ok (Delta_from (p, digest))
              else store_full t content
        in
        t.next_id <- id + 1;
        Hashtbl.replace t.stored id stored;
        t.commits <-
          { id; parents; message; timestamp = Unix.gettimeofday () }
          :: t.commits;
        t.branches <-
          (t.head_branch, id) :: List.remove_assoc t.head_branch t.branches;
        go (id :: acc) tl)
  in
  let* ids = go [] entries in
  let* () = save t in
  Ok ids

(* ---- stats ---- *)

let referenced_digests t =
  Hashtbl.fold
    (fun _ s acc ->
      match s with Full d -> d :: acc | Delta_from (_, d) -> d :: acc)
    t.stored []

let object_size t digest =
  match Object_store.get t.store digest with
  | Ok c -> String.length c
  | Error _ -> 0

let stats t =
  let n_versions = Hashtbl.length t.stored in
  let n_full =
    Hashtbl.fold
      (fun _ s acc -> match s with Full _ -> acc + 1 | _ -> acc)
      t.stored 0
  in
  (* Unique blobs only: dedup shared digests. *)
  let module SS = Set.Make (String) in
  let digests = SS.of_list (referenced_digests t) in
  let storage_bytes =
    SS.fold (fun d acc -> acc + object_size t d) digests 0
  in
  (* Chain metrics. *)
  let depth_memo = Hashtbl.create 64 in
  let cost_memo = Hashtbl.create 64 in
  let rec depth v =
    match Hashtbl.find_opt depth_memo v with
    | Some d -> d
    | None ->
        let d =
          match Hashtbl.find_opt t.stored v with
          | Some (Delta_from (p, _)) -> 1 + depth p
          | _ -> 0
        in
        Hashtbl.replace depth_memo v d;
        d
  and cost v =
    match Hashtbl.find_opt cost_memo v with
    | Some c -> c
    | None ->
        let c =
          match Hashtbl.find_opt t.stored v with
          | Some (Full d) -> float_of_int (object_size t d)
          | Some (Delta_from (p, d)) ->
              float_of_int (object_size t d) +. cost p
          | None -> 0.0
        in
        Hashtbl.replace cost_memo v c;
        c
  in
  let max_chain = ref 0 and sum_r = ref 0.0 and max_r = ref 0.0 in
  Hashtbl.iter
    (fun v _ ->
      let d = depth v and c = cost v in
      if d > !max_chain then max_chain := d;
      sum_r := !sum_r +. c;
      if c > !max_r then max_r := c)
    t.stored;
  {
    n_versions;
    storage_bytes;
    n_full;
    n_delta = n_versions - n_full;
    max_chain = !max_chain;
    sum_recreation_bytes = !sum_r;
    max_recreation_bytes = !max_r;
  }

let storage_parents t =
  Hashtbl.fold
    (fun v s acc ->
      match s with
      | Full _ -> (0, v) :: acc
      | Delta_from (p, _) -> (p, v) :: acc)
    t.stored []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* ---- optimization ---- *)

(* Hop-bounded pairs over the commit DAG (both directions). *)
let hop_pairs t ~max_hops =
  let ids = List.rev_map (fun c -> c.id) t.commits in
  let adj = Hashtbl.create 64 in
  let add a b =
    let cur = Option.value (Hashtbl.find_opt adj a) ~default:[] in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          add c.id p;
          add p c.id)
        c.parents)
    t.commits;
  let pairs = ref [] in
  List.iter
    (fun src ->
      let dist = Hashtbl.create 16 in
      Hashtbl.replace dist src 0;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let du = Hashtbl.find dist u in
        if du < max_hops then
          List.iter
            (fun w ->
              if not (Hashtbl.mem dist w) then begin
                Hashtbl.replace dist w (du + 1);
                pairs := (src, w) :: !pairs;
                Queue.add w q
              end)
            (Option.value (Hashtbl.find_opt adj u) ~default:[])
      done)
    ids;
  !pairs

(* All version contents, index 1..n. *)
let all_contents t =
  let n = t.next_id - 1 in
  let arr = Array.make (n + 1) "" in
  let rec go v =
    if v > n then Ok arr
    else
      let* c = checkout t v in
      arr.(v) <- c;
      go (v + 1)
  in
  go 1

(* The repository's revealed ⟨Δ, Φ⟩ graph: materializations plus
   line-diff deltas between versions within [max_hops] of each other
   in the commit DAG, plus any [extra_pairs]. *)
let reveal_graph t ?(max_hops = 3) ?(extra_pairs = []) () =
  let n = t.next_id - 1 in
  if n = 0 then Error "empty repository"
  else
    let* contents = all_contents t in
    let aux = Aux_graph.create ~n_versions:n in
    for v = 1 to n do
      let size = float_of_int (String.length contents.(v)) in
      Aux_graph.add_materialization aux ~version:v ~delta:size ~phi:size
    done;
    let seen = Hashtbl.create 64 in
    let reveal (u, v) =
      if u >= 1 && v >= 1 && u <> v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.replace seen (u, v) ();
        let d = Line_diff.diff contents.(u) contents.(v) in
        let size = float_of_int (Line_diff.size d) in
        Aux_graph.add_delta aux ~src:u ~dst:v ~delta:size ~phi:size
      end
    in
    List.iter reveal (hop_pairs t ~max_hops);
    List.iter reveal extra_pairs;
    Ok (aux, contents)

let optimize t ?(max_hops = 3) strategy =
  let n = t.next_id - 1 in
  if n = 0 then Error "empty repository"
  else begin
    (* The SVN baseline dictates its own delta pairs, which may lie
       outside the hop window. *)
    let extra_pairs =
      match strategy with
      | Svn_skip ->
          Versioning_core.Skip_delta.parents
            ~order:(Array.init n (fun i -> i + 1))
      | _ -> []
    in
    let* aux, contents = reveal_graph t ~max_hops ~extra_pairs () in
    let* plan =
      match strategy with
      | Min_storage -> Versioning_core.Mca.solve aux
      | Min_recreation -> Versioning_core.Spt.solve aux
      | Budgeted_sum factor -> (
          match (Versioning_core.Mca.solve aux, Versioning_core.Spt.solve aux)
          with
          | Ok base, Ok spt ->
              let budget = factor *. Storage_graph.storage_cost base in
              Ok (Versioning_core.Lmg.solve aux ~base ~spt ~budget ())
          | (Error _ as e), _ | _, (Error _ as e) -> e)
      | Bounded_max factor -> (
          let dist = Versioning_core.Spt.distances aux in
          let maxd = Array.fold_left Float.max 0.0 dist in
          match Versioning_core.Mp.solve aux ~theta:(factor *. maxd) with
          | { tree = Some sg; _ } -> Ok sg
          | { tree = None; _ } -> Error "recreation bound infeasible")
      | Git_window (w, d) -> Versioning_core.Gith.solve aux ~window:w ~max_depth:d
      | Svn_skip ->
          Versioning_core.Skip_delta.solve aux
            ~order:(Array.init n (fun i -> i + 1))
    in
    (* Rewrite only the entries whose storage parent changes (the
       migration-plan discipline): unchanged versions keep their
       existing objects. *)
    let current_parent v =
      match Hashtbl.find_opt t.stored v with
      | Some (Full _) -> Some 0
      | Some (Delta_from (p, _)) -> Some p
      | None -> None
    in
    let* () =
      List.fold_left
        (fun acc (p, v) ->
          let* () = acc in
          if current_parent v = Some p then Ok ()
          else if p = 0 then
            let* digest = Object_store.put t.store contents.(v) in
            Hashtbl.replace t.stored v (Full digest);
            Ok ()
          else begin
            let d = Line_diff.diff contents.(p) contents.(v) in
            let* digest = Object_store.put t.store (Line_diff.encode d) in
            Hashtbl.replace t.stored v (Delta_from (p, digest));
            Ok ()
          end)
        (Ok ())
        (Storage_graph.to_parents plan)
    in
    let* () = save t in
    (* Garbage-collect unreferenced blobs. *)
    let module SS = Set.Make (String) in
    let live = SS.of_list (referenced_digests t) in
    List.iter
      (fun digest ->
        if not (SS.mem digest live) then Object_store.delete t.store digest)
      (Object_store.list_digests t.store);
    Ok (stats t)
  end
