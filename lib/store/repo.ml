module Line_diff = Versioning_delta.Line_diff
module Pool = Versioning_util.Pool
module Fsutil = Versioning_util.Fsutil
module Faults = Versioning_util.Faults
module Aux_graph = Versioning_core.Aux_graph
module Storage_graph = Versioning_core.Storage_graph
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Obs = Versioning_obs.Obs
module Telemetry = Versioning_obs.Telemetry
module Timeseries = Versioning_obs.Timeseries
module Context = Versioning_obs.Context

let log_src = Logs.Src.create "dsvc.repo" ~doc:"Repository store"

module Log = (val Logs.src_log log_src : Logs.LOG)

let ( let* ) = Result.bind

(* Observability only: cache outcome counters (mirroring the exact
   mutable counters [cache_stats] reports) and optimize phase spans.
   All of it is inert while DSVC_OBS is off. *)
let record_cache result =
  Metrics.counter "dsvc_store_checkout_cache_total"
    ~labels:[ ("result", result) ]
    ~help:"Checkout materialization-cache outcomes"

type commit_info = {
  id : int;
  parents : int list;
  message : string;
  timestamp : float;
}

type stored = Full of string | Delta_from of int * string

(* Materialization cache entry: version contents are immutable once
   committed (optimize/repair only re-plan how they are stored), so a
   cached string can never go stale — eviction is purely a bound on
   memory. *)
type cache_entry = { content : string; mutable stamp : int }

type t = {
  root : string;
  store : Object_store.t;
  mutable commits : commit_info list;  (* newest first *)
  mutable stored : (int, stored) Hashtbl.t;
  mutable branches : (string * int) list;
  mutable tag_list : (string * int) list;
  mutable head_branch : string;
  mutable next_id : int;
  (* Metadata generation: bumped on every durable [save], carried in
     the meta file, and compared by [adopt_meta] so replicated nodes
     only ever move forward. Gaps are fine; order is what matters. *)
  mutable generation : int;
  (* checkout LRU (per handle, never persisted) *)
  cache : (int, cache_entry) Hashtbl.t;
  mutable cache_slots : int;
  mutable cache_clock : int;
  mutable cache_hits : int;
  mutable cache_partial_hits : int;
  mutable cache_misses : int;
  (* workload telemetry (DESIGN.md §15): per-version access ledger.
     Counting is unconditional and clock-free; cost observation and
     persistence only happen while the Obs gate is on. *)
  mutable telemetry : Telemetry.t;
  mutable telemetry_dirty : bool;
  (* metrics time-series ring (DESIGN.md §16): sampled by the server's
     reactor timer, persisted beside the metadata like the telemetry
     ledger. Replaced wholesale when a prior session's file loads. *)
  mutable timeseries : Timeseries.t;
  (* Per-handle memo of the current plan's predicted recreation bytes,
     learned from full cache-miss chain walks; reset whenever the
     storage plan changes. Observability only — never feeds
     decisions. *)
  phi_memo : (int, float) Hashtbl.t;
  (* lint: mutable-ok last drift score computed by [drift_score];
     cached so [export_telemetry] stays memory-only — recomputing
     walks every stored object, which a server must never do per
     request (in cluster mode those are remote reads taken under the
     repository lock). *)
  mutable last_drift : float;
}

type stats = {
  n_versions : int;
  storage_bytes : int;
  n_full : int;
  n_delta : int;
  max_chain : int;
  sum_recreation_bytes : float;
  max_recreation_bytes : float;
}

type strategy =
  | Min_storage
  | Min_recreation
  | Budgeted_sum of float
  | Bounded_max of float
  | Git_window of int * int
  | Svn_skip

type weights = Uniform | Observed

type drifted = {
  d_version : int;
  d_share : float;
  d_phi : float;
  d_contribution : float;
}

type advice = {
  a_drift : float;
  a_threshold : float;
  a_events : int;
  a_top : drifted list;
  a_current_weighted : float;
  a_candidate_weighted : float;
  a_saving : float;
  a_recommend : bool;
}

type repair_report = {
  quarantined : string list;
  rematerialized : int list;
  unrecoverable : int list;
  strays_removed : int;
}

type fsck_result = { actions : string list; problems : string list }

type cache_stats = { hits : int; partial_hits : int; misses : int }

let default_cache_slots = 16

let fresh_cache_fields () =
  ( Hashtbl.create 16,
    default_cache_slots )

let mk_repo ~root ~store ~commits ~stored ~branches ~tag_list ~head_branch
    ~next_id =
  let cache, cache_slots = fresh_cache_fields () in
  {
    root;
    store;
    commits;
    stored;
    branches;
    tag_list;
    head_branch;
    next_id;
    generation = 0;
    cache;
    cache_slots;
    cache_clock = 0;
    cache_hits = 0;
    cache_partial_hits = 0;
    cache_misses = 0;
    telemetry = Telemetry.create ();
    telemetry_dirty = false;
    timeseries = Timeseries.create ();
    phi_memo = Hashtbl.create 16;
    last_drift = 0.0;
  }

let meta_dir path = Filename.concat path ".dsvc"
let meta_file path = Filename.concat (meta_dir path) "meta"
let backup_file path = meta_file path ^ ".bak"
let objects_dir path = Filename.concat (meta_dir path) "objects"
let journal_file path = Filename.concat (meta_dir path) "journal"
let telemetry_file path = Filename.concat (meta_dir path) "telemetry"
let timeseries_file path = Filename.concat (meta_dir path) "timeseries"
let lock_file path = Filename.concat (meta_dir path) "lock"

let root t = t.root
let journal_pending t = Sys.file_exists (journal_file t.root)

(* ---- repository lock ----

   One exclusive POSIX record lock per repository directory guards
   against two processes mutating the same metadata. Record locks do
   not exclude within a process, so we keep a single process-wide fd
   per lock path: re-opening the same repository in-process shares the
   lock (and its fd), while another process gets a clean error. The
   pid is recorded so a fork does not inherit a stale claim. *)

let lock_mutex = Mutex.create ()

(* lint: mutable-ok process-global lock registry; every access is
   inside [lock_mutex], and domains never touch it (locks are taken
   on open/close, on the caller's domain only) *)
let lock_table : (string, Unix.file_descr * int) Hashtbl.t = Hashtbl.create 8

let acquire_lock path =
  let key = lock_file path in
  Mutex.lock lock_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock_mutex)
    (fun () ->
      (match Hashtbl.find_opt lock_table key with
      | Some (fd, pid) when pid <> Unix.getpid () ->
          (* inherited across fork: the lock belongs to the parent *)
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Hashtbl.remove lock_table key
      | _ -> ());
      if Hashtbl.mem lock_table key then Ok ()
      else
        (* lint: raw-write-ok O_CREAT here creates the lock file, not
           repository data; its contents are never read *)
        match Unix.openfile key [ Unix.O_CREAT; Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644 with
        | exception Unix.Unix_error (err, fn, _) ->
            Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
        | fd -> (
            match Unix.lockf fd Unix.F_TLOCK 0 with
            | () ->
                Hashtbl.replace lock_table key (fd, Unix.getpid ());
                Ok ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Error
                  (Printf.sprintf
                     "repository at %s is locked by another process" path)
            | exception Unix.Unix_error (err, fn, _) ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))))

let release_lock path =
  let key = lock_file path in
  Mutex.lock lock_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock_mutex)
    (fun () ->
      match Hashtbl.find_opt lock_table key with
      | Some (fd, pid) when pid = Unix.getpid () ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Hashtbl.remove lock_table key
      | _ -> ())

(* ---- telemetry ledger persistence ----

   The access ledger lives beside the metadata (.dsvc/telemetry) and
   accumulates across sessions: [open] merges whatever a previous
   session persisted into the fresh in-memory ledger, and [close]
   writes the union back — but only when the Obs gate is on, so an
   un-instrumented run performs no extra I/O whatsoever. A torn or
   corrupt ledger is ignored (telemetry must never make a repository
   unopenable). *)

let telemetry t = t.telemetry

let load_telemetry t =
  if Sys.file_exists (telemetry_file t.root) then
    match Fsutil.read_file (telemetry_file t.root) with
    | Error _ -> ()
    | Ok content -> (
        match Telemetry.parse content with
        | Ok ledger -> t.telemetry <- Telemetry.merge t.telemetry ledger
        | Error e ->
            Log.warn (fun m ->
                m "ignoring unreadable telemetry ledger: %s" e))

let flush_telemetry t =
  if Telemetry.is_empty t.telemetry then Ok ()
  else
    match
      Fsutil.write_file_atomic ~site:"telemetry.save" (telemetry_file t.root)
        (Telemetry.render t.telemetry)
    with
    | Ok () ->
        t.telemetry_dirty <- false;
        Ok ()
    | Error _ as e -> e

(* ---- metrics time-series persistence ----

   Same contract as the telemetry ledger: a .dsvc/timeseries file
   beside the metadata, written atomically at its own fault site,
   ignored when torn or corrupt (observability must never make a
   repository unopenable). Unlike telemetry there is no merge — a
   loaded ring replaces the fresh empty one wholesale; the rings are
   bounded so a union would just double-count buckets. *)

let timeseries t = t.timeseries

let load_timeseries t =
  if Sys.file_exists (timeseries_file t.root) then
    match Fsutil.read_file (timeseries_file t.root) with
    | Error _ -> ()
    | Ok content -> (
        match Timeseries.parse content with
        | Ok ts -> t.timeseries <- ts
        | Error e ->
            Log.warn (fun m ->
                m "ignoring unreadable timeseries ledger: %s" e))

let flush_timeseries t =
  if Timeseries.is_empty t.timeseries then Ok ()
  else
    Fsutil.write_file_atomic ~site:"timeseries.save" (timeseries_file t.root)
      (Timeseries.render t.timeseries)

let close t =
  if t.telemetry_dirty && Obs.enabled () then
    (match flush_telemetry t with
    | Ok () -> ()
    | Error e ->
        Log.warn (fun m -> m "telemetry ledger not persisted: %s" e));
  if Obs.enabled () && not (Timeseries.is_empty t.timeseries) then
    (match flush_timeseries t with
    | Ok () -> ()
    | Error e ->
        Log.warn (fun m -> m "timeseries ledger not persisted: %s" e));
  release_lock t.root

(* ---- reference-name validation ----

   The metadata format is line- and space-delimited: a branch or tag
   name containing whitespace or control characters would make the
   repository unloadable. *)

let valid_ref_name name =
  name <> "" && String.length name <= 255
  && String.for_all (fun c -> c > ' ' && c <> '\x7f') name

(* ---- in-memory state snapshots ----

   Mutations are applied in memory and then persisted by [save]; if
   the save fails, the snapshot is restored so memory never diverges
   from disk. *)

type snapshot =
  commit_info list
  * (int, stored) Hashtbl.t
  * (string * int) list
  * (string * int) list
  * string
  * int
  * int

let snapshot t : snapshot =
  ( t.commits,
    Hashtbl.copy t.stored,
    t.branches,
    t.tag_list,
    t.head_branch,
    t.next_id,
    t.generation )

let restore t ((commits, stored, branches, tags, head, next, gen) : snapshot) =
  t.commits <- commits;
  t.stored <- stored;
  t.branches <- branches;
  t.tag_list <- tags;
  t.head_branch <- head;
  t.next_id <- next;
  t.generation <- gen

(* ---- metadata persistence ---- *)

let render_meta t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "dsvc 1\n";
  Buffer.add_string buf (Printf.sprintf "head %s\n" t.head_branch);
  Buffer.add_string buf (Printf.sprintf "next %d\n" t.next_id);
  if t.generation > 0 then
    Buffer.add_string buf (Printf.sprintf "gen %d\n" t.generation);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "branch %s %d\n" name v))
    t.branches;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "tag %s %d\n" name v))
    t.tag_list;
  List.iter
    (fun c ->
      let parents =
        match c.parents with
        | [] -> "-"
        | ps -> String.concat "," (List.map string_of_int ps)
      in
      Buffer.add_string buf
        (Printf.sprintf "version %d %.6f %s %s\n" c.id c.timestamp parents
           (String.escaped c.message)))
    t.commits;
  Hashtbl.iter
    (fun id s ->
      match s with
      | Full digest ->
          Buffer.add_string buf (Printf.sprintf "stored %d full %s\n" id digest)
      | Delta_from (p, digest) ->
          Buffer.add_string buf
            (Printf.sprintf "stored %d delta %d %s\n" id p digest))
    t.stored;
  (* the trailer lets [load] tell a truncated (torn) file from a
     complete one *)
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let save t =
  t.generation <- t.generation + 1;
  match
    Fsutil.write_file_atomic ~site:"repo.save" ~backup:(backup_file t.root)
      (meta_file t.root) (render_meta t)
  with
  | Ok () -> Ok ()
  | Error _ as e ->
      t.generation <- t.generation - 1;
      e

let save_rollback t snap =
  match save t with
  | Ok () -> Ok ()
  | Error e ->
      restore t snap;
      Error e

let parse_meta path store content =
  let t =
    mk_repo ~root:path ~store ~commits:[] ~stored:(Hashtbl.create 64)
      ~branches:[] ~tag_list:[] ~head_branch:"main" ~next_id:1
  in
  let fail msg = Error (Printf.sprintf "corrupt repository metadata: %s" msg) in
  let parse_line line =
    if line = "" then Ok ()
    else
      match String.split_on_char ' ' line with
      | "dsvc" :: _ -> Ok ()
      | [ "head"; name ] ->
          t.head_branch <- name;
          Ok ()
      | [ "next"; n ] -> (
          match int_of_string_opt n with
          | Some n ->
              t.next_id <- n;
              Ok ()
          | None -> fail "bad next id")
      | [ "gen"; n ] -> (
          (* absent in pre-cluster metadata: generation stays 0 *)
          match int_of_string_opt n with
          | Some n ->
              t.generation <- n;
              Ok ()
          | None -> fail "bad generation")
      | [ "branch"; name; v ] -> (
          match int_of_string_opt v with
          | Some v ->
              t.branches <- t.branches @ [ (name, v) ];
              Ok ()
          | None -> fail "bad branch head")
      | [ "tag"; name; v ] -> (
          match int_of_string_opt v with
          | Some v ->
              t.tag_list <- t.tag_list @ [ (name, v) ];
              Ok ()
          | None -> fail "bad tag target")
      | "version" :: id :: ts :: parents :: msg_parts -> (
          match (int_of_string_opt id, float_of_string_opt ts) with
          | Some id, Some timestamp -> (
              let message =
                try Scanf.unescaped (String.concat " " msg_parts)
                with Scanf.Scan_failure _ -> String.concat " " msg_parts
              in
              match
                if parents = "-" then Ok []
                else
                  String.split_on_char ',' parents
                  |> List.map int_of_string_opt
                  |> List.fold_left
                       (fun acc p ->
                         match (acc, p) with
                         | Ok acc, Some p -> Ok (acc @ [ p ])
                         | _ -> Error ())
                       (Ok [])
              with
              | Ok parents ->
                  t.commits <-
                    t.commits @ [ { id; parents; message; timestamp } ];
                  Ok ()
              | Error () -> fail "bad parent list")
          | _ -> fail "bad version line")
      | [ "stored"; id; "full"; digest ] -> (
          match int_of_string_opt id with
          | Some id ->
              Hashtbl.replace t.stored id (Full digest);
              Ok ()
          | None -> fail "bad stored line")
      | [ "stored"; id; "delta"; p; digest ] -> (
          match (int_of_string_opt id, int_of_string_opt p) with
          | Some id, Some p ->
              Hashtbl.replace t.stored id (Delta_from (p, digest));
              Ok ()
          | _ -> fail "bad stored line")
      | _ -> fail ("unknown line: " ^ line)
  in
  (* Split off the "end" trailer: its absence means the file was
     truncated mid-write. *)
  let rec body acc = function
    | [] -> fail "truncated metadata (missing end marker)"
    | "end" :: rest ->
        if List.for_all (fun l -> l = "") rest then Ok (List.rev acc)
        else fail "content after end marker"
    | l :: rest -> body (l :: acc) rest
  in
  let* lines = body [] (String.split_on_char '\n' content) in
  let rec go = function
    | [] -> Ok ()
    | l :: tl -> ( match parse_line l with Ok () -> go tl | Error _ as e -> e)
  in
  let* () = go lines in
  (* Newest first. *)
  t.commits <- List.sort (fun a b -> compare b.id a.id) t.commits;
  Ok t

let load path store =
  let* content = Fsutil.read_file (meta_file path) in
  parse_meta path store content

(* ---- retrieval ---- *)

(* [bytes], when given, accumulates the logical size of every object
   read along the replay — the observed recreation cost the telemetry
   ledger records. Callers pass it only while the Obs gate is on, so
   the plain path does no extra work. *)
let replay_deltas ?bytes t base deltas =
  let count n =
    match bytes with
    | Some r -> r := !r +. float_of_int n
    | None -> ()
  in
  List.fold_left
    (fun acc digest ->
      let* content = acc in
      let* encoded = Object_store.get t.store digest in
      count (String.length encoded);
      match Line_diff.decode encoded with
      | d -> (
          try Ok (Line_diff.apply content d)
          with Invalid_argument e -> Error e)
      | exception Invalid_argument e -> Error e)
    (Ok base) deltas

(* The cache-free path: reads every object along the chain. Integrity
   checks ([verify], [check_all_versions], [repair]) must use this one
   — a cached string would mask on-disk corruption they exist to
   find. *)
let checkout_uncached t version =
  (* Walk back to a full object, then replay deltas forward. *)
  let rec chain v acc =
    match Hashtbl.find_opt t.stored v with
    | None -> Error (Printf.sprintf "version %d is not stored" v)
    | Some (Full digest) -> Ok (digest, acc)
    | Some (Delta_from (p, digest)) ->
        if List.length acc > Hashtbl.length t.stored then
          Error "delta chain contains a cycle"
        else chain p (digest :: acc)
  in
  let* base_digest, deltas = chain version [] in
  let* base = Object_store.get t.store base_digest in
  replay_deltas t base deltas

(* ---- materialization LRU ---- *)

let cache_find t v =
  match Hashtbl.find_opt t.cache v with
  | Some e ->
      t.cache_clock <- t.cache_clock + 1;
      e.stamp <- t.cache_clock;
      Some e.content
  | None -> None

let cache_evict_to t bound =
  (* O(slots) scan per eviction — slots counts are small by design. *)
  while Hashtbl.length t.cache > bound do
    let victim =
      Hashtbl.fold
        (fun v e acc ->
          match acc with
          | Some (_, stamp) when stamp <= e.stamp -> acc
          | _ -> Some (v, e.stamp))
        t.cache None
    in
    match victim with
    | Some (v, _) -> Hashtbl.remove t.cache v
    | None -> ()
  done

let cache_put t v content =
  if t.cache_slots > 0 then begin
    t.cache_clock <- t.cache_clock + 1;
    Hashtbl.replace t.cache v { content; stamp = t.cache_clock };
    cache_evict_to t t.cache_slots
  end

let set_cache_slots t slots =
  if slots < 0 then invalid_arg "Repo.set_cache_slots: negative bound";
  t.cache_slots <- slots;
  if slots = 0 then Hashtbl.reset t.cache else cache_evict_to t slots

let cache_stats t =
  {
    hits = t.cache_hits;
    partial_hits = t.cache_partial_hits;
    misses = t.cache_misses;
  }

(* Observed-recreation bookkeeping for one checkout: wall-clock since
   [t0] plus the bytes read along the chain go into the ledger, with
   the plan's predicted Φ (learned from full cache-miss walks — on a
   miss the chain bytes *are* the plan's recreation cost) and the
   ambient trace id as an exemplar. Only reached when [Telemetry.clock]
   yielded a [Some], i.e. while the gate is on. *)
let note_recreation t version ~t0 ~bytes ~miss =
  let seconds =
    match Telemetry.clock () with Some t1 -> t1 -. t0 | None -> 0.0
  in
  if miss then Hashtbl.replace t.phi_memo version bytes;
  let predicted =
    match Hashtbl.find_opt t.phi_memo version with
    | Some p -> p
    | None -> bytes
  in
  match Context.current_trace_id () with
  | Some trace ->
      Telemetry.record_recreation t.telemetry version ~seconds ~bytes
        ~predicted ~trace ()
  | None ->
      Telemetry.record_recreation t.telemetry version ~seconds ~bytes
        ~predicted ()

(* Cached checkout: walk the chain backwards only until a materialized
   prefix is found — the version itself (pure hit), a cached ancestor
   (replay only the suffix), or the stored full object (cold). The
   result is cached, so a scan along a chain pays each delta once
   instead of replaying every prefix from the root. *)
let checkout t version =
  (* [None] while the Obs gate is off: the whole cost-observation path
     below collapses and the ledger bump stays the only extra work. *)
  let t0 = Telemetry.clock () in
  match cache_find t version with
  | Some content ->
      t.cache_hits <- t.cache_hits + 1;
      record_cache "hit";
      Telemetry.bump_checkout t.telemetry version ~cached:true;
      t.telemetry_dirty <- true;
      (match t0 with
      | Some t0 -> note_recreation t version ~t0 ~bytes:0.0 ~miss:false
      | None -> ());
      Ok content
  | None ->
      let counter = match t0 with Some _ -> Some (ref 0.0) | None -> None in
      let rec chain v acc =
        match if v = version then None else cache_find t v with
        | Some content -> Ok (`Content content, acc)
        | None -> (
            match Hashtbl.find_opt t.stored v with
            | None -> Error (Printf.sprintf "version %d is not stored" v)
            | Some (Full digest) -> Ok (`Digest digest, acc)
            | Some (Delta_from (p, digest)) ->
                if List.length acc > Hashtbl.length t.stored then
                  Error "delta chain contains a cycle"
                else chain p (digest :: acc))
      in
      let* base, deltas = chain version [] in
      Telemetry.bump_checkout t.telemetry version ~cached:false;
      t.telemetry_dirty <- true;
      let miss = match base with `Digest _ -> true | `Content _ -> false in
      let* base_content =
        match base with
        | `Content c ->
            t.cache_partial_hits <- t.cache_partial_hits + 1;
            record_cache "partial";
            Ok c
        | `Digest d ->
            t.cache_misses <- t.cache_misses + 1;
            record_cache "miss";
            let r = Object_store.get t.store d in
            (match (counter, r) with
            | Some c, Ok content ->
                c := !c +. float_of_int (String.length content)
            | _ -> ());
            r
      in
      let* content = replay_deltas ?bytes:counter t base_content deltas in
      cache_put t version content;
      (match (t0, counter) with
      | Some t0, Some c -> note_recreation t version ~t0 ~bytes:!c ~miss
      | _ -> ());
      Ok content

(* every version must reconstruct — the invariant [optimize] and
   journal recovery check before destroying anything *)
let check_all_versions t =
  Hashtbl.fold
    (fun v _ acc ->
      let* () = acc in
      match checkout_uncached t v with
      | Ok _ -> Ok ()
      | Error e -> Error (Printf.sprintf "version %d: %s" v e))
    t.stored (Ok ())

(* ---- journal (two-phase optimize) ---- *)

let stored_line prefix id s =
  match s with
  | Full d -> Printf.sprintf "%s %d full %s\n" prefix id d
  | Delta_from (p, d) -> Printf.sprintf "%s %d delta %d %s\n" prefix id p d

let write_journal t ~old_map ~new_map =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "journal 1\n";
  Hashtbl.iter (fun id s -> Buffer.add_string buf (stored_line "old" id s)) old_map;
  Hashtbl.iter (fun id s -> Buffer.add_string buf (stored_line "new" id s)) new_map;
  Buffer.add_string buf "end\n";
  Fsutil.write_file_atomic ~site:"repo.journal" (journal_file t.root)
    (Buffer.contents buf)

let parse_journal content =
  let old_map = Hashtbl.create 64 and new_map = Hashtbl.create 64 in
  let fail msg = Error (Printf.sprintf "corrupt journal: %s" msg) in
  let entry tbl id kind rest =
    match (int_of_string_opt id, kind, rest) with
    | Some id, "full", [ d ] ->
        Hashtbl.replace tbl id (Full d);
        Ok ()
    | Some id, "delta", [ p; d ] -> (
        match int_of_string_opt p with
        | Some p ->
            Hashtbl.replace tbl id (Delta_from (p, d));
            Ok ()
        | None -> fail "bad delta parent")
    | _ -> fail "bad stored entry"
  in
  let parse_line line =
    if line = "" then Ok ()
    else
      match String.split_on_char ' ' line with
      | "journal" :: _ -> Ok ()
      | "old" :: id :: kind :: rest -> entry old_map id kind rest
      | "new" :: id :: kind :: rest -> entry new_map id kind rest
      | _ -> fail ("unknown line: " ^ line)
  in
  let rec body acc = function
    | [] -> fail "truncated (missing end marker)"
    | "end" :: rest ->
        if List.for_all (fun l -> l = "") rest then Ok (List.rev acc)
        else fail "content after end marker"
    | l :: rest -> body (l :: acc) rest
  in
  let* lines = body [] (String.split_on_char '\n' content) in
  let rec go = function
    | [] -> Ok (old_map, new_map)
    | l :: tl -> ( match parse_line l with Ok () -> go tl | Error _ as e -> e)
  in
  go lines

let remove_journal t =
  try Sys.remove (journal_file t.root) with Sys_error _ -> ()

let read_journal t =
  if not (Sys.file_exists (journal_file t.root)) then None
  else
    match Fsutil.read_file (journal_file t.root) with
    | Error _ -> None
    | Ok content -> (
        match parse_journal content with
        | Ok maps -> Some maps
        | Error _ -> None)

(* ---- garbage collection ---- *)

let referenced_digests t =
  Hashtbl.fold
    (fun _ s acc ->
      match s with Full d -> d :: acc | Delta_from (_, d) -> d :: acc)
    t.stored []

module SS = Set.Make (String)

(* Remove blobs referenced by no version. Refuses to run while an
   optimize journal is pending, since the journal's maps may still
   reference them. *)
let gc t =
  if Sys.file_exists (journal_file t.root) then 0
  else
    let live = SS.of_list (referenced_digests t) in
    List.fold_left
      (fun acc digest ->
        if SS.mem digest live then acc
        else begin
          Object_store.delete t.store digest;
          acc + 1
        end)
      0
      (Object_store.list_digests t.store)

(* ---- journal recovery (runs under the repo lock at open) ----

   A journal on disk means a crash interrupted [optimize] after its
   new objects were written. Roll forward if the intended map fully
   reconstructs; otherwise roll back to the pre-optimize map; if
   neither is whole (additional damage), keep the journal so [repair]
   can recover over the union of both maps. *)

let recover_journal t =
  if not (Sys.file_exists (journal_file t.root)) then Ok `No_journal
  else
    match Fsutil.read_file (journal_file t.root) with
    | Error _ ->
        remove_journal t;
        Ok `Rolled_back
    | Ok content -> (
        match parse_journal content with
        | Error _ ->
            (* torn journal: the metadata swap never happened, the
               current metadata is authoritative *)
            remove_journal t;
            Ok `Rolled_back
        | Ok (old_map, new_map) ->
            let try_map m =
              let prev = t.stored in
              t.stored <- m;
              match check_all_versions t with
              | Ok () -> true
              | Error _ ->
                  t.stored <- prev;
                  false
            in
            let finish outcome =
              let* () = save t in
              remove_journal t;
              Hashtbl.reset t.phi_memo;
              ignore (gc t);
              Ok outcome
            in
            if try_map new_map then begin
              Log.warn (fun m ->
                  m "interrupted optimize: rolled forward from journal");
              finish `Rolled_forward
            end
            else if try_map old_map then begin
              Log.warn (fun m ->
                  m "interrupted optimize: rolled back to pre-optimize map");
              finish `Rolled_back
            end
            else begin
              Log.warn (fun m ->
                  m
                    "interrupted optimize: neither map reconstructs, keeping \
                     journal for repair");
              Ok `Journal_kept
            end)

(* ---- open / init ---- *)

(* The [store] override replaces the blob store (cluster mode plugs
   the replicated quorum view in here); metadata, lock, and journal
   always stay on the local filesystem — each node owns its own copy. *)
let resolve_store store path =
  match store with
  | Some s -> Ok s
  | None -> Object_store.create ~dir:(objects_dir path)

let init_opt store ~path =
  if Sys.file_exists (meta_file path) then
    Error (Printf.sprintf "repository already exists at %s" path)
  else
    let* () = Fsutil.mkdir_p (meta_dir path) in
    let* () = acquire_lock path in
    let* store = resolve_store store path in
    let t =
      mk_repo ~root:path ~store ~commits:[] ~stored:(Hashtbl.create 64)
        ~branches:[ ("main", 0) ] ~tag_list:[] ~head_branch:"main" ~next_id:1
    in
    let* () = save t in
    Ok t

let init ~path = init_opt None ~path
let init_with ~store ~path = init_opt (Some store) ~path

let open_opt store ~path =
  if not (Sys.file_exists (meta_file path)) then
    Error (Printf.sprintf "no repository at %s" path)
  else
    let* () = acquire_lock path in
    let* store = resolve_store store path in
    let* t = load path store in
    let* _outcome = recover_journal t in
    load_telemetry t;
    load_timeseries t;
    Ok t

let open_repo ~path = open_opt None ~path
let open_with ~store ~path = open_opt (Some store) ~path

(* ---- metadata replication (cluster mode) ---- *)

let generation t = t.generation
let object_store t = t.store

let export_meta t =
  (* The on-disk bytes, not a re-render: replicas adopt byte-identical
     metadata, so every node's meta file is comparable directly. *)
  Fsutil.read_file (meta_file t.root)

let adopt_meta t content =
  let* incoming = parse_meta t.root t.store content in
  if incoming.generation <= t.generation then Ok false
  else
    let* () =
      Fsutil.write_file_atomic ~site:"repo.save" ~backup:(backup_file t.root)
        (meta_file t.root) content
    in
    t.commits <- incoming.commits;
    t.stored <- incoming.stored;
    t.branches <- incoming.branches;
    t.tag_list <- incoming.tag_list;
    t.head_branch <- incoming.head_branch;
    t.next_id <- incoming.next_id;
    t.generation <- incoming.generation;
    (* Version contents are immutable so cached strings stay valid,
       but ids unknown to the new metadata must not linger. *)
    Hashtbl.reset t.cache;
    (* the adopted metadata may carry a different storage plan *)
    Hashtbl.reset t.phi_memo;
    Ok true

(* ---- commits & branches ---- *)

let head t = List.assoc_opt t.head_branch t.branches |> Option.fold ~none:None ~some:(fun v -> if v = 0 then None else Some v)

let current_branch t = t.head_branch
let branches t = List.filter (fun (_, v) -> v <> 0) t.branches
let log t = t.commits
let commit_info t id = List.find_opt (fun c -> c.id = id) t.commits

let store_full t content =
  let* digest = Object_store.put t.store content in
  Ok (Full digest)

let commit t ?(message = "") ?parents content =
  let parents =
    match parents with
    | Some ps -> ps
    | None -> ( match head t with None -> [] | Some h -> [ h ])
  in
  let* () =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        if Hashtbl.mem t.stored p then Ok ()
        else Error (Printf.sprintf "unknown parent version %d" p))
      (Ok ()) parents
  in
  let id = t.next_id in
  (* all object writes happen before any in-memory mutation, so a
     failed put leaves the repository exactly as it was *)
  let* stored =
    match parents with
    | [] -> store_full t content
    | p :: _ ->
        let* parent_content = checkout_uncached t p in
        let delta = Line_diff.diff parent_content content in
        let encoded = Line_diff.encode delta in
        if String.length encoded < String.length content then
          let* digest = Object_store.put t.store encoded in
          Ok (Delta_from (p, digest))
        else store_full t content
  in
  let snap = snapshot t in
  t.next_id <- id + 1;
  Hashtbl.replace t.stored id stored;
  t.commits <-
    { id; parents; message; timestamp = Unix.gettimeofday () } :: t.commits;
  t.branches <-
    (t.head_branch, id)
    :: List.remove_assoc t.head_branch t.branches;
  let* () = save_rollback t snap in
  Ok id

let create_branch t name ?at () =
  if not (valid_ref_name name) then
    Error
      (Printf.sprintf
         "invalid branch name %S (must be non-empty printable characters \
          without whitespace)"
         name)
  else if List.mem_assoc name t.branches then
    Error (Printf.sprintf "branch %s already exists" name)
  else begin
    let target =
      match at with Some v -> Some v | None -> head t
    in
    match target with
    | None -> Error "cannot branch from an empty repository"
    | Some v ->
        if not (Hashtbl.mem t.stored v) then
          Error (Printf.sprintf "unknown version %d" v)
        else begin
          let snap = snapshot t in
          t.branches <- (name, v) :: t.branches;
          t.head_branch <- name;
          save_rollback t snap
        end
  end

let switch t name =
  if List.mem_assoc name t.branches then begin
    let snap = snapshot t in
    t.head_branch <- name;
    save_rollback t snap
  end
  else Error (Printf.sprintf "no branch named %s" name)

let tag t name ?at () =
  if not (valid_ref_name name) then
    Error
      (Printf.sprintf
         "invalid tag name %S (must be non-empty printable characters \
          without whitespace)"
         name)
  else if List.mem_assoc name t.tag_list then
    Error (Printf.sprintf "tag %s already exists" name)
  else
    match (match at with Some v -> Some v | None -> head t) with
    | None -> Error "cannot tag in an empty repository"
    | Some v ->
        if not (Hashtbl.mem t.stored v) then
          Error (Printf.sprintf "unknown version %d" v)
        else begin
          let snap = snapshot t in
          t.tag_list <- (name, v) :: t.tag_list;
          save_rollback t snap
        end

let tags t = List.sort compare t.tag_list

let resolve t name =
  match List.assoc_opt name t.tag_list with
  | Some v -> Some v
  | None -> (
      match List.assoc_opt name t.branches with
      | Some v when v <> 0 -> Some v
      | _ -> (
          match int_of_string_opt name with
          | Some v when Hashtbl.mem t.stored v -> Some v
          | _ -> None))

let diff t a b =
  let* ca = checkout t a in
  let* cb = checkout t b in
  Ok (Line_diff.encode (Line_diff.diff ca cb))

let verify t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* every referenced object exists and matches its digest ([get]
     verifies content hashes on every read) *)
  Hashtbl.iter
    (fun v s ->
      let digest = match s with Full d | Delta_from (_, d) -> d in
      match Object_store.get t.store digest with
      | Error e -> note "version %d: object unreadable (%s)" v e
      | Ok _ -> ())
    t.stored;
  (* every version reconstructs *)
  Hashtbl.iter
    (fun v _ ->
      match checkout_uncached t v with
      | Ok _ -> ()
      | Error e -> note "version %d: checkout failed (%s)" v e)
    t.stored;
  (* commit parents all exist *)
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem t.stored p) then
            note "version %d: missing parent %d" c.id p)
        c.parents)
    t.commits;
  if Sys.file_exists (journal_file t.root) then
    note "unresolved optimize journal present (crash recovery incomplete)";
  if !problems = [] then Ok () else Error (List.rev !problems)

let import_versions t entries =
  let snap = snapshot t in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (message, parents, content) :: tl -> (
        (* inline commit without per-version save *)
        let* () =
          List.fold_left
            (fun acc p ->
              let* () = acc in
              if Hashtbl.mem t.stored p then Ok ()
              else Error (Printf.sprintf "unknown parent version %d" p))
            (Ok ()) parents
        in
        let id = t.next_id in
        let* stored =
          match parents with
          | [] -> store_full t content
          | p :: _ ->
              let* parent_content = checkout_uncached t p in
              let delta = Line_diff.diff parent_content content in
              let encoded = Line_diff.encode delta in
              if String.length encoded < String.length content then
                let* digest = Object_store.put t.store encoded in
                Ok (Delta_from (p, digest))
              else store_full t content
        in
        t.next_id <- id + 1;
        Hashtbl.replace t.stored id stored;
        t.commits <-
          { id; parents; message; timestamp = Unix.gettimeofday () }
          :: t.commits;
        t.branches <-
          (t.head_branch, id) :: List.remove_assoc t.head_branch t.branches;
        go (id :: acc) tl)
  in
  match go [] entries with
  | Error e ->
      restore t snap;
      Error e
  | Ok ids ->
      let* () = save_rollback t snap in
      Ok ids

(* ---- stats ---- *)

let object_size t digest =
  match Object_store.get t.store digest with
  | Ok c -> String.length c
  | Error _ -> 0

let stats t =
  let n_versions = Hashtbl.length t.stored in
  let n_full =
    Hashtbl.fold
      (fun _ s acc -> match s with Full _ -> acc + 1 | _ -> acc)
      t.stored 0
  in
  (* Unique blobs only: dedup shared digests. *)
  let digests = SS.of_list (referenced_digests t) in
  let storage_bytes =
    SS.fold (fun d acc -> acc + object_size t d) digests 0
  in
  (* Chain metrics. *)
  let depth_memo = Hashtbl.create 64 in
  let cost_memo = Hashtbl.create 64 in
  let rec depth v =
    match Hashtbl.find_opt depth_memo v with
    | Some d -> d
    | None ->
        let d =
          match Hashtbl.find_opt t.stored v with
          | Some (Delta_from (p, _)) -> 1 + depth p
          | _ -> 0
        in
        Hashtbl.replace depth_memo v d;
        d
  and cost v =
    match Hashtbl.find_opt cost_memo v with
    | Some c -> c
    | None ->
        let c =
          match Hashtbl.find_opt t.stored v with
          | Some (Full d) -> float_of_int (object_size t d)
          | Some (Delta_from (p, d)) ->
              float_of_int (object_size t d) +. cost p
          | None -> 0.0
        in
        Hashtbl.replace cost_memo v c;
        c
  in
  let max_chain = ref 0 and sum_r = ref 0.0 and max_r = ref 0.0 in
  Hashtbl.iter
    (fun v _ ->
      let d = depth v and c = cost v in
      if d > !max_chain then max_chain := d;
      sum_r := !sum_r +. c;
      if c > !max_r then max_r := c)
    t.stored;
  {
    n_versions;
    storage_bytes;
    n_full;
    n_delta = n_versions - n_full;
    max_chain = !max_chain;
    sum_recreation_bytes = !sum_r;
    max_recreation_bytes = !max_r;
  }

let storage_parents t =
  Hashtbl.fold
    (fun v s acc ->
      match s with
      | Full _ -> (0, v) :: acc
      | Delta_from (p, _) -> (p, v) :: acc)
    t.stored []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

(* ---- workload telemetry: drift and observed weights ---- *)

(* The current plan's per-version recreation cost in stored bytes
   (Σ object sizes along the delta chain): the predicted Φ the drift
   score and [dsvc top] compare observations against. Cheap relative
   to [reveal_graph] — it reads only the objects the plan references. *)
let predicted_costs t =
  let memo = Hashtbl.create 64 in
  let rec cost v =
    match Hashtbl.find_opt memo v with
    | Some c -> c
    | None ->
        let c =
          match Hashtbl.find_opt t.stored v with
          | Some (Full d) -> float_of_int (object_size t d)
          | Some (Delta_from (p, d)) ->
              float_of_int (object_size t d) +. cost p
          | None -> 0.0
        in
        Hashtbl.replace memo v c;
        c
  in
  Hashtbl.fold (fun v _ acc -> (v, cost v) :: acc) t.stored []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let drift_score t =
  let d = Telemetry.drift t.telemetry ~costs:(predicted_costs t) in
  t.last_drift <- d;
  d

(* Observed access frequencies for the solver, indexed 1..n: the
   ledger's decayed weights normalized to a distribution, then floored
   at 1% of uniform so never-accessed versions keep a nonzero weight
   (their recreation still matters, just 100× less than an even
   share). [None] while the ledger is empty — callers fall back to
   uniform, which is the same plan as not passing frequencies at
   all. *)
let observed_freqs t =
  let n = t.next_id - 1 in
  if n <= 0 then None
  else begin
    let raw =
      Array.init (n + 1) (fun v ->
          if v = 0 then 0.0 else Telemetry.freq_of t.telemetry v)
    in
    let sum = Array.fold_left ( +. ) 0.0 raw in
    if sum <= 0.0 then None
    else begin
      let floor_w = 0.01 /. float_of_int n in
      Some
        (Array.mapi
           (fun v r -> if v = 0 then 0.0 else (r /. sum) +. floor_w)
           raw)
    end
  end

(* Memory-only on purpose: the drift gauge reuses the last
   [drift_score] result (0 until one is computed — GET /stats,
   [advise], `dsvc top` and the bench all compute one) rather than
   re-walking every stored object here. A server calls this under the
   repository lock after each repo-touching request; in cluster mode a
   fresh walk would mean remote blob reads under that lock — the
   recipe for a cross-node lock cycle. *)
let export_telemetry t =
  if Obs.enabled () then
    Telemetry.export t.telemetry ~repo:t.root ~drift:t.last_drift

(* ---- optimization ---- *)

(* Hop-bounded pairs over the commit DAG (both directions). *)
let hop_pairs t ~max_hops =
  let ids = List.rev_map (fun c -> c.id) t.commits in
  let adj = Hashtbl.create 64 in
  let add a b =
    let cur = Option.value (Hashtbl.find_opt adj a) ~default:[] in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          add c.id p;
          add p c.id)
        c.parents)
    t.commits;
  let pairs = ref [] in
  List.iter
    (fun src ->
      let dist = Hashtbl.create 16 in
      Hashtbl.replace dist src 0;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let du = Hashtbl.find dist u in
        if du < max_hops then
          List.iter
            (fun w ->
              if not (Hashtbl.mem dist w) then begin
                Hashtbl.replace dist w (du + 1);
                pairs := (src, w) :: !pairs;
                Queue.add w q
              end)
            (Option.value (Hashtbl.find_opt adj u) ~default:[])
      done)
    ids;
  !pairs

(* All version contents, index 1..n. *)
let all_contents t =
  let n = t.next_id - 1 in
  let arr = Array.make (n + 1) "" in
  let rec go v =
    if v > n then Ok arr
    else
      let* c = checkout_uncached t v in
      arr.(v) <- c;
      go (v + 1)
  in
  go 1

(* The repository's revealed ⟨Δ, Φ⟩ graph: materializations plus
   line-diff deltas between versions within [max_hops] of each other
   in the commit DAG, plus any [extra_pairs]. This is the dominant
   cost of [optimize] — O(pairs) line diffs — so the diffs fan out
   over the domain pool: the pair list is deduplicated in reveal
   order first, the sizes are computed in parallel (each diff reads
   only the immutable contents array), and the edges are added
   sequentially in that same order, so the revealed graph is
   identical for every [jobs]. *)
let reveal_graph t ?(max_hops = 3) ?(extra_pairs = [])
    ?(jobs = Pool.default_jobs ()) () =
  let n = t.next_id - 1 in
  if n = 0 then Error "empty repository"
  else
    Trace.with_span "optimize.graph_construction" @@ fun () ->
    let* contents =
      Trace.with_span "optimize.load_contents" (fun () -> all_contents t)
    in
    let aux = Aux_graph.create ~n_versions:n in
    for v = 1 to n do
      let size = float_of_int (String.length contents.(v)) in
      Aux_graph.add_materialization aux ~version:v ~delta:size ~phi:size
    done;
    let seen = Hashtbl.create 64 in
    let ordered = ref [] in
    let consider (u, v) =
      if u >= 1 && v >= 1 && u <> v && not (Hashtbl.mem seen (u, v)) then begin
        Hashtbl.replace seen (u, v) ();
        ordered := (u, v) :: !ordered
      end
    in
    List.iter consider (hop_pairs t ~max_hops);
    List.iter consider extra_pairs;
    let pairs = Array.of_list (List.rev !ordered) in
    let sizes =
      Trace.with_span "optimize.diff_sizes" (fun () ->
          Pool.parallel_map ~jobs
            (fun (u, v) ->
              float_of_int
                (Line_diff.size (Line_diff.diff contents.(u) contents.(v))))
            pairs)
    in
    Array.iteri
      (fun i (u, v) ->
        Aux_graph.add_delta aux ~src:u ~dst:v ~delta:sizes.(i) ~phi:sizes.(i))
      pairs;
    Ok (aux, contents)

(* [optimize] is crash-safe via a two-phase protocol:

   1. write every new object (the old ones are untouched);
   2. journal both the old and the intended stored maps, fsynced;
   3. atomically swap the metadata to the new map;
   4. verify every version reconstructs under the new map;
   5. only then delete the journal and garbage-collect.

   A crash at any point leaves the repository recoverable: before the
   journal, the old metadata is intact and the new objects are strays;
   after it, [recover_journal] (run by [open_repo]) rolls forward or
   back; and the GC never runs while a journal is pending. *)
let strategy_name = function
  | Min_storage -> "min_storage"
  | Min_recreation -> "min_recreation"
  | Budgeted_sum _ -> "budgeted_sum"
  | Bounded_max _ -> "bounded_max"
  | Git_window _ -> "git_window"
  | Svn_skip -> "svn_skip"

let optimize t ?(max_hops = 3) ?(jobs = Pool.default_jobs ())
    ?(check = false) ?(weights = Uniform) strategy =
  Trace.with_span "optimize" @@ fun () ->
  Metrics.counter "dsvc_store_optimize_total"
    ~labels:[ ("strategy", strategy_name strategy) ]
    ~help:"Repo.optimize invocations, by strategy";
  let n = t.next_id - 1 in
  if n = 0 then Error "empty repository"
  else begin
    (* Observed weights only change the workload-aware LMG objective;
       every other strategy's optimum is frequency-independent. An
       empty ledger degrades to uniform — the identical plan. *)
    let freqs =
      match weights with Uniform -> None | Observed -> observed_freqs t
    in
    (match (weights, freqs, strategy) with
    | Observed, None, _ ->
        Log.warn (fun m ->
            m
              "optimize: observed weights requested but the access ledger \
               is empty; planning with uniform weights")
    | Observed, Some _, Budgeted_sum _ -> ()
    | Observed, Some _, _ ->
        Log.warn (fun m ->
            m
              "optimize: observed weights only affect the budgeted_sum \
               (LMG) strategy; %s plans ignore them"
              (strategy_name strategy))
    | Uniform, _, _ -> ());
    (* The SVN baseline dictates its own delta pairs, which may lie
       outside the hop window. *)
    let extra_pairs =
      match strategy with
      | Svn_skip ->
          Versioning_core.Skip_delta.parents
            ~order:(Array.init n (fun i -> i + 1))
      | _ -> []
    in
    let* aux, contents = reveal_graph t ~max_hops ~extra_pairs ~jobs () in
    let* plan =
      Trace.with_span "optimize.solve" @@ fun () ->
      match strategy with
      | Min_storage -> Versioning_core.Mca.solve aux
      | Min_recreation -> Versioning_core.Spt.solve aux
      | Budgeted_sum factor -> (
          match (Versioning_core.Mca.solve aux, Versioning_core.Spt.solve aux)
          with
          | Ok base, Ok spt ->
              let budget = factor *. Storage_graph.storage_cost base in
              Ok (Versioning_core.Lmg.solve aux ~base ~spt ~budget ?freqs ())
          | (Error _ as e), _ | _, (Error _ as e) -> e)
      | Bounded_max factor -> (
          let dist = Versioning_core.Spt.distances aux in
          let maxd = Array.fold_left Float.max 0.0 dist in
          match Versioning_core.Mp.solve aux ~theta:(factor *. maxd) with
          | { tree = Some sg; _ } -> Ok sg
          | { tree = None; _ } -> Error "recreation bound infeasible")
      | Git_window (w, d) ->
          Versioning_core.Gith.solve ~jobs aux ~window:w ~max_depth:d
      | Svn_skip ->
          Versioning_core.Skip_delta.solve aux
            ~order:(Array.init n (fun i -> i + 1))
    in
    (* Refuse to rewrite storage from a plan that fails independent
       verification (spanning arborescence over revealed edges, Lemma 1
       accounting) — a solver bug must not reach the object store. *)
    let* () =
      if not check then Ok ()
      else
        match Versioning_core.Solution_check.check aux plan with
        | Ok _ -> Ok ()
        | Error problems ->
            Error
              ("optimize: solver produced an invalid solution:\n"
              ^ String.concat "\n" problems)
    in
    let current_parent v =
      match Hashtbl.find_opt t.stored v with
      | Some (Full _) -> Some 0
      | Some (Delta_from (p, _)) -> Some p
      | None -> None
    in
    (* Phase 1: write the new objects, building the intended map on
       the side — the live map (memory and disk) is untouched, so an
       error or crash here costs only stray blobs. Only entries whose
       storage parent changes are rewritten (the migration-plan
       discipline): unchanged versions keep their existing objects.
       The payloads (full contents or encoded diffs) are pure
       functions of the immutable contents array, so they fan out
       over the domain pool; the [Object_store.put] calls stay
       sequential, in plan order, to keep fault-injection sites and
       store traffic identical to a jobs=1 run. *)
    let new_stored = Hashtbl.copy t.stored in
    let changed =
      Array.of_list
        (List.filter
           (fun (p, v) -> current_parent v <> Some p)
           (Storage_graph.to_parents plan))
    in
    Metrics.counter "dsvc_store_optimize_objects_rewritten_total"
      ~by:(float_of_int (Array.length changed))
      ~help:"Versions whose stored object optimize rewrote";
    let* () =
      Trace.with_span "optimize.materialize" @@ fun () ->
      let payloads =
        Pool.parallel_map ~jobs
          (fun (p, v) ->
            if p = 0 then contents.(v)
            else Line_diff.encode (Line_diff.diff contents.(p) contents.(v)))
          changed
      in
      let rec put i acc =
        if i = Array.length changed then acc
        else
          let* () = acc in
          let p, v = changed.(i) in
          let* digest = Object_store.put t.store payloads.(i) in
          Hashtbl.replace new_stored v
            (if p = 0 then Full digest else Delta_from (p, digest));
          put (i + 1) (Ok ())
      in
      put 0 (Ok ())
    in
    Faults.guard "optimize.after_objects";
    (* Phase 2: journal both maps. *)
    let* () = write_journal t ~old_map:t.stored ~new_map:new_stored in
    Faults.guard "optimize.after_journal";
    (* Phase 3: swap the metadata. *)
    let snap = snapshot t in
    t.stored <- new_stored;
    let* () =
      match save t with
      | Ok () -> Ok ()
      | Error e ->
          restore t snap;
          remove_journal t;
          Error e
    in
    Faults.guard "optimize.after_swap";
    (* Phase 4: verify before destroying anything. *)
    match Trace.with_span "optimize.verify" (fun () -> check_all_versions t) with
    | Error e ->
        restore t snap;
        let* () = save t in
        remove_journal t;
        Error (Printf.sprintf "optimize verification failed, rolled back: %s" e)
    | Ok () ->
        (* Phase 5: the swap is durable — clean up. *)
        remove_journal t;
        (* new plan, new predicted recreation costs *)
        Hashtbl.reset t.phi_memo;
        Faults.guard "optimize.before_gc";
        ignore (Trace.with_span "optimize.gc" (fun () -> gc t));
        Ok (stats t)
  end

(* ---- advise: should this repository re-optimize? ----

   Re-derives the current plan's predicted Φ on the revealed ⟨Δ, Φ⟩
   instance (forcing the plan's own edges into the reveal so Lemma-1 /
   Solution_check accounting applies to it), scores the workload drift
   against the ledger, and prices a candidate LMG re-plan under the
   observed frequencies at the storage budget the current plan already
   spends. Read-only: nothing is rewritten. *)
let advise t ?(max_hops = 3) ?(jobs = Pool.default_jobs ())
    ?(threshold = 0.5) ?(k = 5) () =
  let n = t.next_id - 1 in
  if n = 0 then Error "empty repository"
  else begin
    let current_pairs =
      List.filter (fun (p, _) -> p <> 0) (storage_parents t)
    in
    let* aux, _contents =
      reveal_graph t ~max_hops ~extra_pairs:current_pairs ~jobs ()
    in
    let check_str sg =
      Result.map_error
        (fun problems -> String.concat "; " problems)
        (Versioning_core.Solution_check.check aux sg)
    in
    let* current =
      Storage_graph.of_parents ~jobs aux ~parents:(storage_parents t)
    in
    let* _report = check_str current in
    let phi = Storage_graph.recreation_costs current in
    let costs = List.init n (fun i -> (i + 1, phi.(i + 1))) in
    let a_drift = Telemetry.drift t.telemetry ~costs in
    let uniform = Array.make (n + 1) (1.0 /. float_of_int n) in
    let freqs = Option.value (observed_freqs t) ~default:uniform in
    let a_current_weighted =
      Storage_graph.weighted_recreation current ~freqs
    in
    let* candidate =
      match
        (Versioning_core.Mca.solve aux, Versioning_core.Spt.solve aux)
      with
      | Ok base, Ok spt ->
          let budget =
            Float.max
              (Storage_graph.storage_cost current)
              (Storage_graph.storage_cost base)
          in
          Ok (Versioning_core.Lmg.solve aux ~base ~spt ~budget ~freqs ())
      | (Error _ as e), _ | _, (Error _ as e) -> e
    in
    let* _report = check_str candidate in
    let a_candidate_weighted =
      Storage_graph.weighted_recreation candidate ~freqs
    in
    (* Top drifted versions: the largest |p̂(v) − 1/n|·Φ(v) terms of
       the drift numerator — where the plan most misprices the actual
       workload. *)
    let raw =
      Array.init (n + 1) (fun v ->
          if v = 0 then 0.0 else Telemetry.freq_of t.telemetry v)
    in
    let rawsum = Array.fold_left ( +. ) 0.0 raw in
    let share v = if rawsum > 0.0 then raw.(v) /. rawsum else 0.0 in
    let a_top =
      List.init n (fun i ->
          let v = i + 1 in
          {
            d_version = v;
            d_share = share v;
            d_phi = phi.(v);
            d_contribution =
              Float.abs (share v -. (1.0 /. float_of_int n)) *. phi.(v);
          })
      |> List.sort (fun a b ->
             match compare b.d_contribution a.d_contribution with
             | 0 -> compare a.d_version b.d_version
             | c -> c)
      |> List.filteri (fun i _ -> i < k)
    in
    let a_saving =
      if a_current_weighted > 0.0 then
        (a_current_weighted -. a_candidate_weighted) /. a_current_weighted
      else 0.0
    in
    let a_events = Telemetry.events t.telemetry in
    Ok
      {
        a_drift;
        a_threshold = threshold;
        a_events;
        a_top;
        a_current_weighted;
        a_candidate_weighted;
        a_saving;
        a_recommend =
          a_events > 0 && a_drift > threshold
          && a_candidate_weighted < a_current_weighted;
      }
  end

(* ---- repair ---- *)

(* Recover every version content reachable over the union of intact
   delta edges from the current stored map plus both journal maps (if
   a journal survived recovery, both the old and new plans were
   damaged — but together they may still cover every version). *)
let recoverable_contents t =
  let maps =
    t.stored
    :: (match read_journal t with
       | Some (old_map, new_map) -> [ old_map; new_map ]
       | None -> [])
  in
  let entries =
    List.concat_map
      (fun m -> Hashtbl.fold (fun v s acc -> (v, s) :: acc) m [])
      maps
  in
  let recovered : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (v, s) ->
        if not (Hashtbl.mem recovered v) then
          match s with
          | Full d -> (
              match Object_store.get t.store d with
              | Ok c ->
                  Hashtbl.replace recovered v c;
                  progress := true
              | Error _ -> ())
          | Delta_from (p, d) -> (
              match Hashtbl.find_opt recovered p with
              | None -> ()
              | Some base -> (
                  match Object_store.get t.store d with
                  | Error _ -> ()
                  | Ok encoded -> (
                      match
                        Line_diff.apply base (Line_diff.decode encoded)
                      with
                      | c ->
                          Hashtbl.replace recovered v c;
                          progress := true
                      | exception Invalid_argument _ -> ()))))
      entries
  done;
  recovered

let repair t =
  (* 1. Quarantine every blob that fails its digest, so a later [put]
     of the true content can lay down a good copy at the same path. *)
  let quarantined =
    List.filter
      (fun d ->
        match Object_store.status t.store d with
        | `Corrupt -> (
            match Object_store.quarantine t.store d with
            | Ok _ -> true
            | Error _ -> false)
        | `Ok | `Missing -> false)
      (Object_store.list_digests t.store)
  in
  (* 2. Recover whatever contents the surviving objects still
     determine, across the current map and any pending journal. *)
  let recovered = recoverable_contents t in
  (* 3. Re-materialize broken versions from the recovered contents.
     Re-check each version as we go: fixing a base version heals its
     delta children for free. *)
  let versions =
    Hashtbl.fold (fun v _ acc -> v :: acc) t.stored [] |> List.sort compare
  in
  let rematerialized = ref [] and unrecoverable = ref [] in
  List.iter
    (fun v ->
      match checkout_uncached t v with
      | Ok _ -> ()
      | Error _ -> (
          match Hashtbl.find_opt recovered v with
          | None -> unrecoverable := v :: !unrecoverable
          | Some content -> (
              match Object_store.put t.store content with
              | Ok digest ->
                  Hashtbl.replace t.stored v (Full digest);
                  rematerialized := v :: !rematerialized
              | Error _ -> unrecoverable := v :: !unrecoverable)))
    versions;
  let* () = save t in
  (* 4. Only a fully recovered repository may drop its safety nets:
     with everything reconstructible the journal is obsolete and
     unreferenced blobs (including aborted-optimize strays) can go. *)
  let strays_removed =
    if !unrecoverable = [] then begin
      remove_journal t;
      gc t
    end
    else 0
  in
  let count_outcome outcome n =
    if n > 0 then
      Metrics.counter "dsvc_store_repair_actions_total"
        ~labels:[ ("outcome", outcome) ]
        ~by:(float_of_int n)
        ~help:"Repo.repair actions, by outcome"
  in
  count_outcome "quarantined" (List.length quarantined);
  count_outcome "rematerialized" (List.length !rematerialized);
  count_outcome "unrecoverable" (List.length !unrecoverable);
  count_outcome "strays_removed" strays_removed;
  List.iter
    (fun d -> Log.warn (fun m -> m "repair: quarantined corrupt object %s" d))
    quarantined;
  List.iter
    (fun v -> Log.info (fun m -> m "repair: re-materialized version %d" v))
    !rematerialized;
  List.iter
    (fun v -> Log.warn (fun m -> m "repair: version %d is unrecoverable" v))
    !unrecoverable;
  if strays_removed > 0 then
    Log.info (fun m ->
        m "repair: removed %d unreferenced object(s)" strays_removed);
  Ok
    {
      quarantined;
      rematerialized = List.rev !rematerialized;
      unrecoverable = List.rev !unrecoverable;
      strays_removed;
    }

(* ---- fsck ---- *)

let fsck_opt store ~path ~repair:do_repair =
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun s -> actions := s :: !actions) fmt in
  let open_with_backup_fallback () =
    match open_opt store ~path with
    | Ok t -> Ok t
    | Error e ->
        (* A torn or corrupt metadata file can be rolled back to the
           last durable save; the damaged file is kept aside. *)
        if
          do_repair
          && Sys.file_exists (meta_file path)
          && Sys.file_exists (backup_file path)
        then
          let* backup = Fsutil.read_file (backup_file path) in
          let* _probe =
            let* probe_store = resolve_store store path in
            parse_meta path probe_store backup
          in
          let meta = meta_file path in
          (try Sys.rename meta (meta ^ ".corrupt") with Sys_error _ -> ());
          let* () =
            Fsutil.write_file_atomic ~site:"repo.save" meta backup
          in
          let* t = open_opt store ~path in
          act
            "restored metadata from backup (damaged file kept as \
             meta.corrupt)";
          Log.warn (fun m ->
              m
                "fsck: restored metadata from backup (damaged file kept as \
                 meta.corrupt)");
          Ok t
        else Error e
  in
  let* t = open_with_backup_fallback () in
  let* () =
    if not do_repair then Ok ()
    else
      let* report = repair t in
      List.iter (fun d -> act "quarantined corrupt object %s" d)
        report.quarantined;
      List.iter (fun v -> act "re-materialized version %d" v)
        report.rematerialized;
      List.iter (fun v -> act "version %d is unrecoverable" v)
        report.unrecoverable;
      if report.strays_removed > 0 then
        act "removed %d unreferenced object(s)" report.strays_removed;
      Ok ()
  in
  let problems = match verify t with Ok () -> [] | Error ps -> ps in
  Metrics.counter "dsvc_store_fsck_total"
    ~labels:[ ("result", (if problems = [] then "clean" else "problems")) ]
    ~help:"Repo.fsck runs, by final verdict";
  Ok { actions = List.rev !actions; problems }

let fsck ~path ~repair = fsck_opt None ~path ~repair
let fsck_with ~store ~path ~repair = fsck_opt (Some store) ~path ~repair
