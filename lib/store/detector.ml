module Metrics = Versioning_obs.Metrics

type peer = {
  mutable strikes : int;  (* consecutive failures since the last success *)
  mutable down_until : float;  (* probation deadline; 0. when up *)
  mutable downs : int;  (* completed probations, drives the backoff *)
  mutable last_error : string;
}

type t = {
  threshold : int;
  probation_base : float;
  probation_max : float;
  now : unit -> float;
  mutex : Mutex.t;
  peers : (string, peer) Hashtbl.t;
}

let create ?(threshold = 3) ?(probation_base = 0.5) ?(probation_max = 30.0)
    ?(now = Unix.gettimeofday) () =
  {
    threshold;
    probation_base;
    probation_max;
    now;
    mutex = Mutex.create ();
    peers = Hashtbl.create 8;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let peer t name =
  match Hashtbl.find_opt t.peers name with
  | Some p -> p
  | None ->
      let p = { strikes = 0; down_until = 0.0; downs = 0; last_error = "" } in
      Hashtbl.add t.peers name p;
      p

let gauge name up =
  Metrics.gauge "dsvc_cluster_peer_up"
    ~labels:[ ("peer", name) ]
    (if up then 1.0 else 0.0)
    ~help:"1 when the failure detector considers the peer usable"

let strikes_gauge name n =
  Metrics.gauge "dsvc_cluster_peer_strikes"
    ~labels:[ ("peer", name) ]
    (float_of_int n)
    ~help:"Consecutive failed exchanges since the peer's last success"

let ok t ~name =
  with_lock t @@ fun () ->
  let p = peer t name in
  p.strikes <- 0;
  p.down_until <- 0.0;
  p.downs <- 0;
  p.last_error <- "";
  gauge name true;
  strikes_gauge name 0

let fail t ~name msg =
  with_lock t @@ fun () ->
  let p = peer t name in
  p.strikes <- p.strikes + 1;
  p.last_error <- msg;
  strikes_gauge name p.strikes;
  if p.strikes >= t.threshold && p.down_until <= t.now () then begin
    (* Exponential probation: each completed probation that ends in
       another failure doubles the cool-off, capped. *)
    let span =
      Float.min t.probation_max
        (t.probation_base *. (2.0 ** float_of_int p.downs))
    in
    p.down_until <- t.now () +. span;
    p.downs <- p.downs + 1;
    Metrics.counter "dsvc_cluster_peer_down_total"
      ~labels:[ ("peer", name) ]
      ~help:"Probation entries per peer (failure detector threshold hits)";
    gauge name false
  end

let state t ~name =
  with_lock t @@ fun () ->
  let p = peer t name in
  if p.strikes < t.threshold then `Up
  else if p.down_until > t.now () then `Down
  else `Probe

let usable t ~name = match state t ~name with `Up | `Probe -> true | `Down -> false

let report t =
  with_lock t @@ fun () ->
  Hashtbl.fold
    (fun name p acc ->
      let st =
        if p.strikes < t.threshold then `Up
        else if p.down_until > t.now () then `Down
        else `Probe
      in
      (name, st, p.last_error) :: acc)
    t.peers []
  |> List.sort compare
