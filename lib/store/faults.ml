(* Compatibility re-export: the fault-injection registry lives in
   [Versioning_util.Faults] so every tier (core graph I/O included)
   shares one registry, but the store API keeps exposing it. No [.mli]
   on purpose — the [include] must re-export the types and the
   [Injected] exception as equations, not fresh declarations. *)
include Versioning_util.Faults
