(** Consistent-hash ring placing content digests on cluster members.

    Each member contributes [vnodes] points on a 64-bit ring (hashes
    of ["name#i"]); a digest's preference order is the distinct
    members met walking clockwise from the digest's own position.
    Virtual nodes smooth the load split, and consistent hashing keeps
    placement stable: adding or removing one member moves only the
    digests whose arc it owned, so a rejoining node's anti-entropy
    sweep is proportional to its share, not the whole store.

    Pure and deterministic — the same member set yields the same ring
    in every process, which is what lets each node compute placement
    locally with no coordination. *)

type t

val create : ?vnodes:int -> members:string list -> unit -> t
(** Build a ring over the given member names (order-insensitive;
    duplicates ignored). [vnodes] defaults to 64 points per member. *)

val members : t -> string list
(** The member set, sorted. *)

val epoch : t -> string
(** 16-hex fingerprint of the member set. Two nodes place blobs
    identically iff their epochs match; exposed via [GET /health]. *)

val sequence : t -> string -> string list
(** All members in the digest's preference order (clockwise walk).
    The tail beyond the owners is the hinted-handoff order. *)

val owners : t -> string -> n:int -> string list
(** First [n] distinct members of {!sequence} — the replica set. *)
