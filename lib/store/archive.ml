module Fsutil = Versioning_util.Fsutil

type entry = { path : string; content : string }

let magic = "dsvc-archive 1"

let path_ok p =
  p <> ""
  && (not (String.contains p '\n'))
  && Filename.is_relative p
  && String.split_on_char '/' p
     |> List.for_all (fun seg -> seg <> "" && seg <> "." && seg <> "..")

let pack entries =
  let sorted =
    List.sort (fun a b -> compare a.path b.path) entries
  in
  let rec validate seen = function
    | [] -> Ok ()
    | { path; _ } :: tl ->
        if not (path_ok path) then
          Error (Printf.sprintf "illegal path %S" path)
        else if List.mem path seen then
          Error (Printf.sprintf "duplicate path %S" path)
        else validate (path :: seen) tl
  in
  match validate [] sorted with
  | Error _ as e -> e
  | Ok () ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf magic;
      Buffer.add_char buf '\n';
      List.iter
        (fun { path; content } ->
          Buffer.add_string buf
            (Printf.sprintf "entry %d\n%s\n" (String.length content) path);
          Buffer.add_string buf content;
          Buffer.add_char buf '\n')
        sorted;
      Ok (Buffer.contents buf)

let unpack s =
  let n = String.length s in
  let line_end pos =
    match String.index_from_opt s pos '\n' with
    | Some i -> Ok i
    | None -> Error "truncated archive (missing newline)"
  in
  let ( let* ) = Result.bind in
  let* hdr_end = line_end 0 in
  if String.sub s 0 hdr_end <> magic then Error "not a dsvc archive"
  else begin
    let rec go pos acc =
      if pos >= n then Ok (List.rev acc)
      else
        let* le = line_end pos in
        let header = String.sub s pos (le - pos) in
        match String.split_on_char ' ' header with
        | [ "entry"; len ] -> (
            match int_of_string_opt len with
            | Some clen when clen >= 0 ->
                let* pe = line_end (le + 1) in
                let path = String.sub s (le + 1) (pe - le - 1) in
                if pe + 1 + clen + 1 > n then
                  Error "truncated archive (content)"
                else if s.[pe + 1 + clen] <> '\n' then
                  Error "corrupt archive (missing separator)"
                else begin
                  let content = String.sub s (pe + 1) clen in
                  go (pe + 1 + clen + 1) ({ path; content } :: acc)
                end
            | _ -> Error "bad entry length")
        | _ -> Error ("unexpected archive line: " ^ header)
    in
    go (hdr_end + 1) []
  end

let paths s = Result.map (List.map (fun e -> e.path)) (unpack s)

let rec collect_files root rel =
  let dir = if rel = "" then root else Filename.concat root rel in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun name ->
         let rel' = if rel = "" then name else rel ^ "/" ^ name in
         let full = Filename.concat root rel' in
         if Sys.is_directory full then collect_files root rel'
         else [ rel' ])

let of_directory root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    Error (Printf.sprintf "%s is not a directory" root)
  else
    try
      let files = collect_files root "" in
      let entries =
        List.map
          (fun path ->
            let ic = open_in_bin (Filename.concat root path) in
            let content =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            { path; content })
          files
      in
      Ok entries
    with Sys_error e -> Error e

let rec mkdir_p dir =
  if dir = "" || dir = "/" || dir = "." || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let to_directory root entries =
  try
    mkdir_p root;
    List.iter
      (fun { path; content } ->
        if not (path_ok path) then failwith (Printf.sprintf "illegal path %S" path);
        let full = Filename.concat root path in
        mkdir_p (Filename.dirname full);
        match Fsutil.write_file full content with
        | Ok () -> ()
        | Error e -> failwith e)
      entries;
    Ok ()
  with
  | Sys_error e -> Error e
  | Failure e -> Error e
