(** Failover client over several [dsvc serve] endpoints.

    Wraps one {!Client} per endpoint and a {!Detector}: requests go to
    the first usable endpoint (Up nodes in configured order, then
    expired probations, then — only as a last resort — nodes still in
    probation), and move to the next endpoint {e only} on
    transport-level failures where no HTTP status came back. An HTTP
    error (404/409/500) is the cluster answering and is returned
    as-is: re-sending a mutation to a second node on a semantic error
    could apply it twice against staler metadata.

    A node killed after applying a commit but before responding does
    force a re-send elsewhere; contents are content-addressed and
    metadata adoption is generation-gated, so the worst case is a
    duplicate version entry — never divergence (DESIGN.md §12).
    Failovers are counted in [dsvc_cluster_client_failover_total] and
    logged (hence visible in the flight ring). *)

type t

val parse_endpoint : string -> (string * int, string) result
(** Split ["host:port"] (shared with the CLI's [--peers] parsing). *)

val connect :
  ?timeout:float ->
  ?retries:int ->
  ?detector:Detector.t ->
  string list ->
  (t, string) result
(** [connect ["host:port"; …]] — endpoint order is the preference
    order among equally healthy nodes. [timeout]/[retries] as in
    {!Client.connect}; [detector] is injectable for tests. *)

val endpoints : t -> string list

val request :
  t ->
  meth:string ->
  path:string ->
  ?query:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** Raw escape hatch with failover; [Error] only when every endpoint
    failed at the transport level. *)

val checkout : t -> string -> (string, string) result
val commit :
  t -> ?message:string -> ?parents:int list -> string -> (int, string) result
val stats : t -> ((string * string) list, string) result
val optimize : t -> string -> ((string * string) list, string) result
val verify : t -> (unit, string) result
val health : t -> ((string * string) list, string) result
val anti_entropy : t -> ((string * string) list, string) result
