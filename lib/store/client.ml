module Retry = Versioning_util.Retry
module Metrics = Versioning_obs.Metrics
module Trace = Versioning_obs.Trace
module Context = Versioning_obs.Context

let log_src = Logs.Src.create "dsvc.client" ~doc:"dsvc HTTP client"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A cached connection: both channel views share [fd]; closing the fd
   once releases everything. *)
type conn_state = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  host : string;
  port : int;
  timeout : float;
  retries : int;
  keepalive : bool;
  lock : Mutex.t;  (* serializes the exchange and guards [cached] *)
  mutable cached : conn_state option;
}

let connect ?(timeout = 10.0) ?(retries = 3) ?(keepalive = true) ~host ~port () =
  { host; port; timeout; retries; keepalive; lock = Mutex.create (); cached = None }

let close t =
  Mutex.lock t.lock;
  (match t.cached with
  | None -> ()
  | Some c ->
      t.cached <- None;
      (try Unix.close c.fd with Unix.Unix_error _ -> ()));
  Mutex.unlock t.lock

(* Numeric address or DNS name — the paper's client/server model
   shouldn't require the caller to pre-resolve hostnames. *)
let resolve_addr host port =
  match Unix.inet_addr_of_string host with
  | addr -> Ok (Unix.ADDR_INET (addr, port))
  | exception Failure _ -> (
      match
        Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
      with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
          Ok (Unix.ADDR_INET (addr, port))
      | _ -> (
          (* some resolvers only answer without the family hint *)
          match
            Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
          with
          | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ ->
              Ok (Unix.ADDR_INET (addr, port))
          | _ -> Error (Printf.sprintf "cannot resolve host %S" host)))

(* Failures before the request is sent (resolution, connect) are safe
   to retry for any method; failures after it only for idempotent
   methods (GET/DELETE) — a retried POST /commit could commit twice.
   [stage] labels the retry counter: where in the exchange the failure
   happened. [Stale_connection] is the reuse hazard: the server closed
   a kept-alive connection (idle timeout, restart) between or during
   requests — always safe to retry by reconnecting when the method is
   idempotent, never blindly for a POST (the server may have processed
   it before closing). *)
type error_kind = Resolve | Connect | Io | Stale_connection

type error = {
  kind : error_kind;
  transient : bool;
  message : string;
  stage : string;
}

let idempotent meth = meth = "GET" || meth = "DELETE"

let transient_unix_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE
  | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.ENETDOWN
  | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR ->
      true
  | _ -> false

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let record_conn mode =
  Metrics.counter "dsvc_client_connections_total"
    ~labels:[ ("mode", mode) ]
    ~help:"TCP connections used by the HTTP client, by mode (new/reused)"

(* A cached connection is only trusted if nothing is readable on it:
   readable-while-idle means the server closed it (EOF pending) or the
   framing is out of sync — either way it is dead to us. *)
let conn_alive c =
  match Unix.select [ c.fd ] [] [] 0.0 with
  | [], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error _ -> false

let fresh_conn t addr =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt_float sock Unix.SO_RCVTIMEO t.timeout;
     Unix.setsockopt_float sock Unix.SO_SNDTIMEO t.timeout
   with Unix.Unix_error _ -> ());
  match Unix.connect sock addr with
  | () ->
      record_conn "new";
      {
        fd = sock;
        ic = Unix.in_channel_of_descr sock;
        oc = Unix.out_channel_of_descr sock;
      }
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e

let attempt t ~ctx ~meth ~path ~query ~body =
  match resolve_addr t.host t.port with
  | Error message ->
      Error { kind = Resolve; transient = false; message; stage = "resolve" }
  | Ok addr -> (
      Mutex.lock t.lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
      (* [sent] splits failures into before/after the request hit the
         wire, which decides retryability for non-idempotent methods;
         [reused] marks failures on a kept-alive connection the server
         may have closed under us. *)
      let sent = ref false in
      let reused = ref false in
      try
        let c =
          match t.cached with
          | Some c ->
              t.cached <- None;
              if conn_alive c then begin
                reused := true;
                record_conn "reused";
                c
              end
              else begin
                (try Unix.close c.fd with Unix.Unix_error _ -> ());
                fresh_conn t addr
              end
          | None -> fresh_conn t addr
        in
        let exchange () =
          let target =
            if query = [] then path
            else
              path ^ "?"
              ^ String.concat "&"
                  (List.map
                     (fun (k, v) -> percent_encode k ^ "=" ^ percent_encode v)
                     query)
          in
          (* Cross-process trace propagation: the server joins this
             operation's trace via [traceparent] and echoes/logs the
             request id (DESIGN.md §11). The parent span is our
             current span when tracing is on. *)
          let traceparent =
            Context.to_traceparent ?span:(Trace.current_id ()) ctx
          in
          sent := true;
          output_string c.oc
            (Printf.sprintf
               "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: %s\r\n\
                Traceparent: %s\r\nX-Dsvc-Request-Id: %s\r\n\
                Content-Length: %d\r\n\r\n%s"
               meth target t.host
               (if t.keepalive then "keep-alive" else "close")
               traceparent ctx.Context.request_id (String.length body) body);
          flush c.oc;
          (* Parse the status line, headers, and Content-Length body. *)
          let line () =
            match In_channel.input_line c.ic with
            | None -> failwith "connection closed mid-response"
            | Some l ->
                if String.length l > 0 && l.[String.length l - 1] = '\r' then
                  String.sub l 0 (String.length l - 1)
                else l
          in
          let status_line = line () in
          let status =
            match String.split_on_char ' ' status_line with
            | _ :: code :: _ -> (
                match int_of_string_opt code with
                | Some c -> c
                | None -> failwith ("bad status line: " ^ status_line))
            | _ -> failwith ("bad status line: " ^ status_line)
          in
          let content_length = ref None in
          let server_closes = ref false in
          let rec headers () =
            let l = line () in
            if l <> "" then begin
              (match String.index_opt l ':' with
              | Some i -> (
                  let name = String.lowercase_ascii (String.sub l 0 i) in
                  let value =
                    String.trim (String.sub l (i + 1) (String.length l - i - 1))
                  in
                  match name with
                  | "content-length" ->
                      content_length := int_of_string_opt value
                  | "connection" ->
                      if String.lowercase_ascii value = "close" then
                        server_closes := true
                  | _ -> ())
              | None -> ());
              headers ()
            end
          in
          headers ();
          let body =
            match !content_length with
            | Some len -> really_input_string c.ic len
            | None -> In_channel.input_all c.ic
          in
          (* Reuse only when both sides committed to it and the body
             was delimited (input_all just consumed to EOF). *)
          let keep =
            t.keepalive && (not !server_closes) && !content_length <> None
          in
          (status, body, keep)
        in
        (match exchange () with
        | status, body, keep ->
            if keep then t.cached <- Some c
            else (try Unix.close c.fd with Unix.Unix_error _ -> ());
            Ok (status, body)
        | exception e ->
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            raise e)
      with
      | Unix.Unix_error (err, fn, _) ->
          let message = Printf.sprintf "%s: %s" fn (Unix.error_message err) in
          if !reused then
            Error
              {
                kind = Stale_connection;
                transient = transient_unix_error err && idempotent meth;
                message = "reused connection failed: " ^ message;
                stage = "reuse";
              }
          else
            Error
              {
                kind = (if !sent then Io else Connect);
                transient =
                  transient_unix_error err && ((not !sent) || idempotent meth);
                message;
                stage = (if !sent then "io" else "connect");
              }
      | Failure e | Sys_error e ->
          if !reused then
            Error
              {
                kind = Stale_connection;
                transient = idempotent meth;
                message = "reused connection failed: " ^ e;
                stage = "reuse";
              }
          else
            Error
              {
                kind = Io;
                transient = idempotent meth;
                message = e;
                stage = (if !sent then "io" else "connect");
              }
      | End_of_file ->
          if !reused then
            Error
              {
                kind = Stale_connection;
                transient = idempotent meth;
                message = "reused connection closed mid-response";
                stage = "reuse";
              }
          else
            Error
              {
                kind = Io;
                transient = idempotent meth;
                message = "unexpected end of response";
                stage = "io";
              }
      | Sys_blocked_io ->
          (* SO_RCVTIMEO expiring under a buffered channel read raises
             Sys_blocked_io, not Unix_error EAGAIN — same transport
             timeout, same mapping (a raw exception here would crash
             the failover path instead of trying the next node) *)
          if !reused then
            Error
              {
                kind = Stale_connection;
                transient = idempotent meth;
                message = "reused connection timed out mid-response";
                stage = "reuse";
              }
          else
            Error
              {
                kind = Io;
                transient = idempotent meth;
                message = "response timed out";
                stage = (if !sent then "io" else "connect");
              })

let request_detailed t ~meth ~path ?(query = []) ?(body = "") () =
  (* One trace context per operation: reuse the caller's ambient
     context when there is one (so a caller-held context shows up in
     the server's access log), otherwise mint a fresh one. Retries
     share the context — the same request id across attempts is what
     lets the server log tie them together. *)
  let ctx =
    match Context.current () with Some c -> c | None -> Context.make ()
  in
  Context.with_context ctx @@ fun () ->
  Trace.with_span "client.request" @@ fun () ->
  let policy = { Retry.default with max_attempts = max 1 t.retries } in
  (* lint: mutable-ok last failure's stage, read only by the retry
     metrics callback below *)
  let last_stage = ref "connect" in
  let result =
    Retry.with_policy ~policy
      ~retryable:(fun f -> f.transient)
      ~on_retry:(fun ~attempt ~delay ->
        Metrics.counter "dsvc_client_retries_total"
          ~labels:[ ("method", meth); ("stage", !last_stage) ]
          ~help:"Backoff sleeps taken by the HTTP client, by method and failure stage";
        Log.warn (fun m ->
            m "retrying %s %s after attempt %d (sleeping %.3fs)" meth path
              attempt delay))
      (fun ~attempt:_ ->
        match attempt t ~ctx ~meth ~path ~query ~body with
        | Error f as e ->
            last_stage := f.stage;
            e
        | Ok _ as ok -> ok)
  in
  (* Per-status outcome counter: 404 vs 409 vs 500 responses are
     distinguishable in `dsvc metrics`; transport-level failures that
     never produced a status land under "error". *)
  Metrics.counter "dsvc_client_requests_total"
    ~labels:
      [
        ("method", meth);
        ( "status",
          match result with
          | Ok (status, _) -> string_of_int status
          | Error _ -> "error" );
      ]
    ~help:"HTTP client requests, by method and response status";
  result

let request t ~meth ~path ?query ?body () =
  Result.map_error
    (fun e -> e.message)
    (request_detailed t ~meth ~path ?query ?body ())

let expect_ok t ~meth ~path ?query ?body () =
  match request t ~meth ~path ?query ?body () with
  | Error _ as e -> e
  | Ok (status, body) when status >= 200 && status < 300 -> Ok body
  | Ok (_, body) -> Error (String.trim body)

let versions t =
  Result.map
    (fun body ->
      String.split_on_char '\n' (String.trim body)
      |> List.filter (fun l -> l <> "")
      |> List.filter_map (fun l ->
             match String.split_on_char ' ' l with
             | id :: parents :: rest -> (
                 match int_of_string_opt id with
                 | Some id ->
                     let parents =
                       if parents = "-" then []
                       else
                         String.split_on_char ',' parents
                         |> List.filter_map int_of_string_opt
                     in
                     Some (id, parents, String.concat " " rest)
                 | None -> None)
             | _ -> None))
    (expect_ok t ~meth:"GET" ~path:"/versions" ())

let checkout t name = expect_ok t ~meth:"GET" ~path:("/checkout/" ^ name) ()

let commit t ?(message = "") ?parents content =
  let query =
    ("message", message)
    ::
    (match parents with
    | None -> []
    | Some ps -> [ ("parents", String.concat "," (List.map string_of_int ps)) ])
  in
  Result.bind
    (expect_ok t ~meth:"POST" ~path:"/commit" ~query ~body:content ())
    (fun body ->
      match int_of_string_opt (String.trim body) with
      | Some id -> Ok id
      | None -> Error ("unexpected commit response: " ^ body))

let kv_body body =
  String.split_on_char '\n' (String.trim body)
  |> List.filter_map (fun l ->
         match String.index_opt l ' ' with
         | Some i ->
             Some (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
         | None -> if l = "" then None else Some (l, ""))

let stats t = Result.map kv_body (expect_ok t ~meth:"GET" ~path:"/stats" ())

let optimize t strategy =
  Result.map kv_body
    (expect_ok t ~meth:"POST" ~path:"/optimize"
       ~query:[ ("strategy", strategy) ]
       ())

let diff t a b = expect_ok t ~meth:"GET" ~path:("/diff/" ^ a ^ "/" ^ b) ()

let unit_post t path query =
  Result.map (fun _ -> ()) (expect_ok t ~meth:"POST" ~path ~query ())

let tag t name ?at () =
  unit_post t ("/tag/" ^ name)
    (match at with Some v -> [ ("at", string_of_int v) ] | None -> [])

let branch t name ?at () =
  unit_post t ("/branch/" ^ name)
    (match at with Some v -> [ ("at", string_of_int v) ] | None -> [])

let switch t name = unit_post t ("/switch/" ^ name) []

let verify t =
  Result.map (fun _ -> ()) (expect_ok t ~meth:"GET" ~path:"/verify" ())

(* ---- cluster support ---- *)

let endpoint t = Printf.sprintf "%s:%d" t.host t.port

let health t = Result.map kv_body (expect_ok t ~meth:"GET" ~path:"/health" ())

(* The failure detector's probe: one attempt, no backoff — a probe
   that silently retried would hide exactly the flakiness the
   detector exists to measure. *)
let ping t =
  match request { t with retries = 1 } ~meth:"GET" ~path:"/health" () with
  | Ok (s, _) when s >= 200 && s < 300 -> Ok ()
  | Ok (s, body) -> Error (Printf.sprintf "health %d: %s" s (String.trim body))
  | Error _ as e -> e

let get_blob t digest = expect_ok t ~meth:"GET" ~path:("/blob/" ^ digest) ()

let put_blob t ~digest content =
  Result.map
    (fun _ -> ())
    (expect_ok t ~meth:"POST" ~path:("/blob/" ^ digest) ~body:content ())

let mem_blob t digest =
  match request t ~meth:"GET" ~path:("/blob/" ^ digest ^ "/stat") () with
  | Ok (200, _) -> true
  | Ok _ | Error _ -> false

let delete_blob t digest =
  ignore (request t ~meth:"DELETE" ~path:("/blob/" ^ digest) ())

let list_blobs t =
  match expect_ok t ~meth:"GET" ~path:"/blobs" () with
  | Error _ -> []
  | Ok body ->
      String.split_on_char '\n' (String.trim body)
      |> List.filter_map (fun l ->
             match String.split_on_char ' ' l with
             | [ digest; size ] ->
                 Option.map (fun s -> (digest, s)) (int_of_string_opt size)
             | _ -> None)

let quarantine_blob t digest =
  expect_ok t ~meth:"POST" ~path:("/blob/" ^ digest ^ "/quarantine") ()

let anti_entropy t =
  Result.map kv_body (expect_ok t ~meth:"POST" ~path:"/anti-entropy" ())

let push_meta t content =
  Result.map
    (fun body -> String.trim body = "adopted")
    (expect_ok t ~meth:"POST" ~path:"/meta/sync" ~body:content ())

let fetch_meta t = expect_ok t ~meth:"GET" ~path:"/meta" ()

(* A peer's store as a {!Backend.t}: what {!Replicated} composes over.
   Blob puts are idempotent (content-addressed), so cross-attempt
   duplication is harmless. *)
let backend t =
  {
    Backend.name = endpoint t;
    put = (fun ~digest content -> put_blob t ~digest content);
    get = (fun ~digest -> get_blob t digest);
    mem = (fun ~digest -> mem_blob t digest);
    delete = (fun ~digest -> delete_blob t digest);
    list = (fun () -> list_blobs t);
    total_bytes =
      (fun () ->
        List.fold_left (fun acc (_, s) -> acc + s) 0 (list_blobs t));
    quarantine = (fun ~digest -> quarantine_blob t digest);
    ping = (fun () -> ping t);
  }
