module Metrics = Versioning_obs.Metrics

let log_src = Logs.Src.create "dsvc.cluster_client" ~doc:"Failover client"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { endpoints : (string * Client.t) list; detector : Detector.t }

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad endpoint %S (want host:port)" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some port when host <> "" && port > 0 && port < 65536 ->
          Ok (host, port)
      | _ -> Error (Printf.sprintf "bad endpoint %S (want host:port)" s))

let connect ?timeout ?retries ?detector endpoints =
  if endpoints = [] then Error "no endpoints given"
  else
    let rec build acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> (
          match parse_endpoint s with
          | Error _ as e -> e
          | Ok (host, port) ->
              let c = Client.connect ?timeout ?retries ~host ~port () in
              build ((Client.endpoint c, c) :: acc) rest)
    in
    match build [] endpoints with
    | Error _ as e -> e
    | Ok eps ->
        let detector =
          match detector with Some d -> d | None -> Detector.create ()
        in
        Ok { endpoints = eps; detector }

let endpoints t = List.map fst t.endpoints

(* Preference order: Up nodes in configured order, then expired
   probations, and — only when nothing better exists — nodes still in
   probation, because a request against a truly dead node costs a
   connect timeout. *)
let candidates t =
  let ranked state =
    List.filter
      (fun (name, _) -> Detector.state t.detector ~name = state)
      t.endpoints
  in
  ranked `Up @ ranked `Probe @ ranked `Down

(* Failover happens ONLY on transport-level errors (no HTTP status
   came back). An HTTP error is the cluster answering — retrying a
   409 or 404 against another node could apply a mutation twice
   against staler metadata. A node killed after committing but before
   responding does force a re-send elsewhere; commits are
   content-addressed so the worst case is a duplicate version entry,
   never divergence (DESIGN.md §12). *)
let request t ~meth ~path ?(query = []) ?(body = "") () =
  let rec go last = function
    | [] -> Error last
    | (name, client) :: rest -> (
        match Client.request client ~meth ~path ~query ~body () with
        | Ok _ as ok ->
            Detector.ok t.detector ~name;
            ok
        | Error e ->
            Detector.fail t.detector ~name e;
            Metrics.counter "dsvc_cluster_client_failover_total"
              ~labels:[ ("from", name) ]
              ~help:"Requests moved to another endpoint after a transport error";
            Log.warn (fun m ->
                m "failover: %s %s on %s failed (%s), trying next" meth path
                  name e);
            go e rest)
  in
  go "no usable endpoint" (candidates t)

let expect_ok t ~meth ~path ?query ?body () =
  match request t ~meth ~path ?query ?body () with
  | Error _ as e -> e
  | Ok (status, body) when status >= 200 && status < 300 -> Ok body
  | Ok (_, body) -> Error (String.trim body)

let kv_body body =
  String.split_on_char '\n' (String.trim body)
  |> List.filter_map (fun l ->
         match String.index_opt l ' ' with
         | Some i ->
             Some
               (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
         | None -> if l = "" then None else Some (l, ""))

let checkout t name = expect_ok t ~meth:"GET" ~path:("/checkout/" ^ name) ()

let commit t ?(message = "") ?parents content =
  let query =
    ("message", message)
    ::
    (match parents with
    | None -> []
    | Some ps -> [ ("parents", String.concat "," (List.map string_of_int ps)) ])
  in
  Result.bind
    (expect_ok t ~meth:"POST" ~path:"/commit" ~query ~body:content ())
    (fun body ->
      match int_of_string_opt (String.trim body) with
      | Some id -> Ok id
      | None -> Error ("unexpected commit response: " ^ body))

let stats t = Result.map kv_body (expect_ok t ~meth:"GET" ~path:"/stats" ())

let optimize t strategy =
  Result.map kv_body
    (expect_ok t ~meth:"POST" ~path:"/optimize"
       ~query:[ ("strategy", strategy) ]
       ())

let verify t =
  Result.map (fun _ -> ()) (expect_ok t ~meth:"GET" ~path:"/verify" ())

let health t = Result.map kv_body (expect_ok t ~meth:"GET" ~path:"/health" ())

let anti_entropy t =
  Result.map kv_body (expect_ok t ~meth:"POST" ~path:"/anti-entropy" ())
