(** HTTP client for a served repository — the other half of the
    paper's client–server prototype (its client was a separate
    program; this one is a typed OCaml API over {!Server}'s routes).

    All calls open one connection per request (matching the server's
    connection-per-request model) and surface non-2xx responses as
    [Error] with the server's message.

    Resilience: sockets carry send/receive timeouts; transient
    transport failures (connection refused/reset, timeouts) are
    retried with exponential backoff and jitter ({!Versioning_util.Retry}).
    Failures after the request was sent are only retried for
    idempotent GETs — a retried POST could apply twice.

    Tracing (DESIGN.md §11): every operation runs under a
    {!Versioning_obs.Context} — the caller's ambient one when present,
    otherwise a fresh one — and sends it as [traceparent] /
    [X-Dsvc-Request-Id] headers so the server's spans and access log
    join the client's trace. The request id is stable across retries
    of one operation. Request/retry counters are labelled by method
    and response status / failure stage. *)

type t

val connect :
  ?timeout:float -> ?retries:int -> host:string -> port:int -> unit -> t
(** No connection is held; this just records the endpoint. [host] may
    be a numeric address or a DNS name (resolved per request via
    [getaddrinfo]). [timeout] (default 10s) bounds each socket
    operation; [retries] (default 3) caps transport-level attempts. *)

val versions : t -> ((int * int list * string) list, string) result
(** [(id, parents, message)] per commit, newest first. *)

val checkout : t -> string -> (string, string) result
(** By id, tag, or branch name. *)

val commit :
  t -> ?message:string -> ?parents:int list -> string -> (int, string) result

val stats : t -> ((string * string) list, string) result
(** The stats fields as key–value pairs, as served. *)

val optimize : t -> string -> ((string * string) list, string) result
(** [optimize t "balanced=1.5"] etc.; returns the post-repack stats. *)

val diff : t -> string -> string -> (string, string) result

val tag : t -> string -> ?at:int -> unit -> (unit, string) result
val branch : t -> string -> ?at:int -> unit -> (unit, string) result
val switch : t -> string -> (unit, string) result
val verify : t -> (unit, string) result

val request :
  t ->
  meth:string ->
  path:string ->
  ?query:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** Raw escape hatch: returns [(status, body)]. *)

(** {2 Cluster support} *)

val endpoint : t -> string
(** ["host:port"] — the peer's name on the {!Ring}. *)

val ping : t -> (unit, string) result
(** Cheap liveness probe against [GET /health]: single attempt, no
    backoff (the {!Detector}'s probe must see real flakiness, not a
    retried success). *)

val health : t -> ((string * string) list, string) result
(** The [GET /health] fields (status, journal, generation, ring
    epoch, per-peer view) as key–value pairs. *)

val get_blob : t -> string -> (string, string) result
val put_blob : t -> digest:string -> string -> (unit, string) result
val mem_blob : t -> string -> bool
val delete_blob : t -> string -> unit

val list_blobs : t -> (string * int) list
(** [(digest, physical_size)] pairs from the peer's local store; an
    unreachable peer yields []. *)

val anti_entropy : t -> ((string * string) list, string) result
(** Ask the peer to run an anti-entropy sweep; returns its report. *)

val push_meta : t -> string -> (bool, string) result
(** Push repository metadata ([POST /meta/sync]); [Ok true] when the
    peer adopted it, [Ok false] when it was stale for the peer. *)

val fetch_meta : t -> (string, string) result
(** The peer's current metadata bytes ([GET /meta]). *)

val backend : t -> Backend.t
(** The peer's {e local} blob store as a {!Backend.t} over the
    [/blob] routes — what {!Replicated} composes into a quorum. *)
