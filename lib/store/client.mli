(** HTTP client for a served repository — the other half of the
    paper's client–server prototype (its client was a separate
    program; this one is a typed OCaml API over {!Server}'s routes).

    Connections are persistent (HTTP/1.1 keep-alive): each client
    caches one open connection and reuses it across requests,
    reconnecting transparently when the server has closed it in the
    meantime. Non-2xx responses surface as [Error] with the server's
    message. A client is safe to share between threads — requests
    serialize on an internal lock.

    Resilience: sockets carry send/receive timeouts; transient
    transport failures (connection refused/reset, timeouts) are
    retried with exponential backoff and jitter ({!Versioning_util.Retry}).
    Failures after the request was sent — including a kept-alive
    connection dying mid-request ({!Stale_connection}) — are only
    retried for idempotent methods (GET/DELETE); a retried POST could
    apply twice.

    Tracing (DESIGN.md §11): every operation runs under a
    {!Versioning_obs.Context} — the caller's ambient one when present,
    otherwise a fresh one — and sends it as [traceparent] /
    [X-Dsvc-Request-Id] headers so the server's spans and access log
    join the client's trace. The request id is stable across retries
    of one operation. Request/retry counters are labelled by method
    and response status / failure stage. *)

type t

val connect :
  ?timeout:float ->
  ?retries:int ->
  ?keepalive:bool ->
  host:string ->
  port:int ->
  unit ->
  t
(** Records the endpoint; the first request opens the connection.
    [host] may be a numeric address or a DNS name (resolved per
    request via [getaddrinfo]). [timeout] (default 10s) bounds each
    socket operation; [retries] (default 3) caps transport-level
    attempts; [keepalive] (default true) keeps the connection open
    between requests — pass [false] to force one connection per
    request (the pre-event-loop behaviour). *)

val close : t -> unit
(** Drop the cached connection, if any. The client stays usable (the
    next request reconnects). *)

(** {2 Typed transport errors} *)

type error_kind =
  | Resolve  (** host name did not resolve *)
  | Connect  (** could not reach the server *)
  | Io  (** the exchange failed on a fresh connection *)
  | Stale_connection
      (** a reused (kept-alive) connection died mid-request: the
          server closed it between or during requests. Retryable by
          reconnecting — but only for idempotent methods, which is
          exactly what [transient] encodes. *)

type error = {
  kind : error_kind;
  transient : bool;  (** safe to retry (method-aware) *)
  message : string;
  stage : string;  (** "resolve" | "connect" | "io" | "reuse" *)
}

val request_detailed :
  t ->
  meth:string ->
  path:string ->
  ?query:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, error) result
(** {!request} with the typed transport error preserved. *)

val versions : t -> ((int * int list * string) list, string) result
(** [(id, parents, message)] per commit, newest first. *)

val checkout : t -> string -> (string, string) result
(** By id, tag, or branch name. *)

val commit :
  t -> ?message:string -> ?parents:int list -> string -> (int, string) result

val stats : t -> ((string * string) list, string) result
(** The stats fields as key–value pairs, as served. *)

val optimize : t -> string -> ((string * string) list, string) result
(** [optimize t "balanced=1.5"] etc.; returns the post-repack stats. *)

val diff : t -> string -> string -> (string, string) result

val tag : t -> string -> ?at:int -> unit -> (unit, string) result
val branch : t -> string -> ?at:int -> unit -> (unit, string) result
val switch : t -> string -> (unit, string) result
val verify : t -> (unit, string) result

val request :
  t ->
  meth:string ->
  path:string ->
  ?query:(string * string) list ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** Raw escape hatch: returns [(status, body)]. *)

(** {2 Cluster support} *)

val endpoint : t -> string
(** ["host:port"] — the peer's name on the {!Ring}. *)

val ping : t -> (unit, string) result
(** Cheap liveness probe against [GET /health]: single attempt, no
    backoff (the {!Detector}'s probe must see real flakiness, not a
    retried success). *)

val health : t -> ((string * string) list, string) result
(** The [GET /health] fields (status, journal, generation, ring
    epoch, per-peer view) as key–value pairs. *)

val get_blob : t -> string -> (string, string) result
val put_blob : t -> digest:string -> string -> (unit, string) result
val mem_blob : t -> string -> bool
val delete_blob : t -> string -> unit

val list_blobs : t -> (string * int) list
(** [(digest, physical_size)] pairs from the peer's local store; an
    unreachable peer yields []. *)

val anti_entropy : t -> ((string * string) list, string) result
(** Ask the peer to run an anti-entropy sweep; returns its report. *)

val push_meta : t -> string -> (bool, string) result
(** Push repository metadata ([POST /meta/sync]); [Ok true] when the
    peer adopted it, [Ok false] when it was stale for the peer. *)

val fetch_meta : t -> (string, string) result
(** The peer's current metadata bytes ([GET /meta]). *)

val backend : t -> Backend.t
(** The peer's {e local} blob store as a {!Backend.t} over the
    [/blob] routes — what {!Replicated} composes into a quorum. *)
